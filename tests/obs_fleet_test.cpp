// Tests for the waran::obs fleet telemetry plane (obs/fleet.h, obs/slo.h,
// obs/flight.h) and its wiring through the runtime layer:
//
//   - HistState is an exact snapshot of the log2 Histogram: merging states
//     answers the same quantile queries as one combined histogram would,
//     including the boundary buckets (0, 1, UINT64_MAX, bucket edges).
//   - CellTelemetry round-trips through the E2-lite indication encoding
//     bit for bit, and its absence / trailing garbage behave as specified.
//   - The RIC's wire-reconstructed FleetView equals the deployment's
//     shipped ground truth exactly after a report boundary.
//   - Repeated virtual-time runs export byte-identical merged traces,
//     identical HealthReports and identical flight bundles — threaded or
//     inline.
//   - A breached SLO lands kSloBreach journal entries, fires the breach
//     hook, and yields a deterministic flight-recorder bundle.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/anomaly.h"
#include "obs/fleet.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "ric/e2lite.h"
#include "ric/near_rt_ric.h"
#include "rt/deployment.h"

namespace waran {
namespace {

// ---------------------------------------------------------------------------
// HistState: exact log2-histogram snapshot + merge

// Adversarial value set hitting the boundary buckets: 0 (bucket 0), 1,
// every bucket edge (2^k - 1 rolls into bucket k, 2^k into bucket k+1) and
// the saturating top bucket.
std::vector<uint64_t> boundary_values() {
  std::vector<uint64_t> vs = {0, 1, 2, 3};
  for (int k = 2; k < 64; k += 7) {
    vs.push_back((uint64_t{1} << k) - 1);
    vs.push_back(uint64_t{1} << k);
    vs.push_back((uint64_t{1} << k) + 1);
  }
  vs.push_back(UINT64_MAX - 1);
  vs.push_back(UINT64_MAX);
  return vs;
}

TEST(HistState, SnapshotMatchesHistogramExactly) {
  obs::Histogram h;
  for (uint64_t v : boundary_values()) h.add(v);
  const obs::HistState s = obs::HistState::from(h);
  EXPECT_EQ(s.count, h.count());
  EXPECT_EQ(s.sum, h.sum());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    EXPECT_EQ(s.quantile(q), h.quantile(q)) << "q=" << q;
  }
}

TEST(HistState, MergeEqualsCombinedHistogram) {
  // Split the boundary set across two histograms, merge the snapshots, and
  // demand bucket-for-bucket equality with one histogram that saw it all.
  obs::Histogram a, b, combined;
  const std::vector<uint64_t> vs = boundary_values();
  for (size_t i = 0; i < vs.size(); ++i) {
    (i % 2 == 0 ? a : b).add(vs[i]);
    combined.add(vs[i]);
  }
  obs::HistState merged = obs::HistState::from(a);
  merged.merge(obs::HistState::from(b));
  EXPECT_EQ(merged, obs::HistState::from(combined));
  for (double q : {0.01, 0.50, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(HistState, SubtractRecoversWindowDelta) {
  obs::Histogram h;
  h.add(0);
  h.add(5);
  const obs::HistState base = obs::HistState::from(h);
  h.add(1);
  h.add(UINT64_MAX);
  obs::HistState window = obs::HistState::from(h);
  window.subtract(base);
  obs::Histogram delta;
  delta.add(1);
  delta.add(UINT64_MAX);
  EXPECT_EQ(window, obs::HistState::from(delta));
}

TEST(HistState, EmptyQuantileIsZero) {
  obs::HistState s;
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// CellTelemetry merge + E2 wire round-trip

obs::CellTelemetry sample_telemetry(uint32_t cell) {
  obs::CellTelemetry t;
  t.gnb = 3;
  t.cell = cell;
  t.slots = 100 + cell;
  t.slot_overruns = 2;
  t.prb_granted = 5000 + cell;
  t.prb_capacity = 5200;
  t.slots_scheduled = 300;
  t.sched_faults = 4;
  t.sanitized_allocs = 1;
  t.plugin_calls = 321;
  t.plugin_traps = 5;
  t.plugin_fuel_exhausted = 2;
  t.plugin_declines = 1;
  t.plugin_fuel_used = 987654;
  t.quarantines = 1;
  t.frames_rejected = 3;
  t.anomalies = 11;
  t.trace_writes = 4096;
  t.trace_dropped = 17;
  t.slot_wall_ns.buckets[0] = 1;
  t.slot_wall_ns.buckets[10] = 90 + cell;
  t.slot_wall_ns.buckets[obs::Histogram::kBuckets - 1] = 1;
  t.slot_wall_ns.sum = 123456789;
  t.slot_wall_ns.count = 92 + cell;
  t.sched_wall_ns.buckets[7] = 300;
  t.sched_wall_ns.sum = 777;
  t.sched_wall_ns.count = 300;
  return t;
}

TEST(CellTelemetry, MergeSumsCountersAndBuckets) {
  obs::CellTelemetry a = sample_telemetry(0);
  const obs::CellTelemetry b = sample_telemetry(1);
  a.merge(b);
  EXPECT_EQ(a.cells_merged, 2u);
  EXPECT_EQ(a.cell, 0u);  // keeps the lowest member id
  EXPECT_EQ(a.slots, (100u + 0) + (100u + 1));
  EXPECT_EQ(a.prb_granted, 5000u + 5001u);
  EXPECT_EQ(a.slot_wall_ns.buckets[10], (90u + 0) + (90u + 1));
  EXPECT_EQ(a.slot_wall_ns.count, (92u + 0) + (92u + 1));
  EXPECT_EQ(a.sched_wall_ns.buckets[7], 600u);
}

TEST(E2Telemetry, TelemetryBlockRoundTripsBitForBit) {
  ric::IndicationReport report;
  ric::SliceReport s;
  s.slice_id = 1;
  s.quota_prbs = 12;
  s.target_bps = 4e6;
  s.rate_bps = 3.5e6;
  report.slices.push_back(s);
  ric::UeReport u;
  u.rnti = 17;
  u.serving_cell = 2;
  u.cqi = 9;
  report.ues.push_back(u);
  report.telemetry = sample_telemetry(2);

  const std::vector<uint8_t> wire = ric::encode_indication(report);
  auto decoded = ric::decode_indication(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_TRUE(decoded->telemetry.has_value());
  EXPECT_EQ(*decoded->telemetry, *report.telemetry);
  EXPECT_EQ(*decoded, report);
}

TEST(E2Telemetry, AbsentBlockDecodesAsNullopt) {
  ric::IndicationReport report;
  report.slices.push_back({});
  const std::vector<uint8_t> wire = ric::encode_indication(report);
  auto decoded = ric::decode_indication(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->telemetry.has_value());
}

TEST(E2Telemetry, TrailingGarbageStaysADecodeError) {
  ric::IndicationReport report;
  report.telemetry = sample_telemetry(0);
  std::vector<uint8_t> wire = ric::encode_indication(report);
  wire.push_back(0xab);  // junk after a valid telemetry block
  EXPECT_FALSE(ric::decode_indication(wire).ok());

  std::vector<uint8_t> no_tel = ric::encode_indication(ric::IndicationReport{});
  no_tel.push_back(0x01);  // one junk byte is not a valid tagged tail either
  EXPECT_FALSE(ric::decode_indication(no_tel).ok());
}

// ---------------------------------------------------------------------------
// Deployment wiring: ground truth vs RIC reconstruction, determinism, SLOs

void reset_global_obs() {
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();
  obs::set_current_slot(0);
}

rt::DeploymentConfig fleet_config(uint32_t cells, bool threaded) {
  rt::DeploymentConfig cfg;
  cfg.cells = cells;
  cfg.seed = 11;
  cfg.threaded = threaded;
  cfg.virtual_time = true;
  cfg.report_period_slots = 10;
  cfg.trace_capacity = 256;
  cfg.slo_window_slots = 20;
  return cfg;
}

TEST(FleetPlane, RicReconstructionEqualsShippedGroundTruth) {
  reset_global_obs();
  rt::GnbDeployment dep(fleet_config(2, /*threaded=*/true));
  ASSERT_TRUE(dep.status().ok()) << dep.status().error().message;
  ASSERT_TRUE(dep.run_slots(40).ok());

  const ric::RicStats& stats = dep.ric().stats();
  EXPECT_GT(stats.telemetry_updates, 0u);
  EXPECT_EQ(stats.telemetry_updates, stats.indications_processed);
  EXPECT_EQ(dep.ric().fleet_view().size(), 2u);
  // The fleet-plane invariant: the view rebuilt purely from blocks that
  // crossed the wire (frame -> link -> unframe -> decode) equals the exact
  // summaries the cells last shipped — bucket for bucket.
  EXPECT_EQ(dep.ric().fleet_view(), dep.shipped_view());
}

TEST(FleetPlane, RollupHierarchyIsExact) {
  reset_global_obs();
  rt::DeploymentConfig cfg = fleet_config(3, /*threaded=*/false);
  rt::GnbDeployment dep(cfg);
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots(30).ok());

  for (uint32_t i = 0; i < 3; ++i) (void)dep.fleet().collect_cell(i);
  const obs::CellTelemetry fleet = dep.fleet().fleet_rollup();
  EXPECT_EQ(fleet.cells_merged, 3u);
  EXPECT_EQ(fleet.slots, 3u * 30u);
  EXPECT_EQ(fleet.prb_capacity, 3u * 30u * cfg.mac.n_prbs);
  // gNB rollup == fleet rollup while the deployment is a single gNB.
  EXPECT_EQ(dep.fleet().gnb_rollup(cfg.gnb_id), fleet);
  // Manual merge of the per-cell leaves must agree with the rollup.
  obs::CellTelemetry manual = dep.fleet().cell_total(0);
  manual.merge(dep.fleet().cell_total(1));
  manual.merge(dep.fleet().cell_total(2));
  EXPECT_EQ(manual, fleet);
}

TEST(FleetPlane, WindowDeltasSubtractExactly) {
  reset_global_obs();
  rt::GnbDeployment dep(fleet_config(2, /*threaded=*/false));
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots(20).ok());
  for (uint32_t i = 0; i < 2; ++i) (void)dep.fleet().collect_cell(i);
  dep.fleet().begin_window();
  ASSERT_TRUE(dep.run_slots(10).ok());
  for (uint32_t i = 0; i < 2; ++i) (void)dep.fleet().collect_cell(i);
  const obs::CellTelemetry w = dep.fleet().cell_window(0);
  EXPECT_EQ(w.slots, 10u);
  EXPECT_EQ(dep.fleet().fleet_rollup(/*window=*/true).slots, 2u * 10u);
}

struct FleetRunCapture {
  std::string merged_trace;
  std::string health_json;
  std::string flight;
  uint64_t breach_windows = 0;
};

FleetRunCapture run_fleet(uint32_t cells, bool threaded, uint32_t slots) {
  reset_global_obs();
  rt::GnbDeployment dep(fleet_config(cells, threaded));
  EXPECT_TRUE(dep.status().ok());
  EXPECT_TRUE(dep.run_slots(slots).ok());
  FleetRunCapture out;
  out.merged_trace = dep.export_merged_trace();
  out.health_json = dep.last_health().to_json();
  out.flight = dep.capture_flight_bundle("test");
  out.breach_windows = dep.slo_breach_windows();
  return out;
}

TEST(FleetPlane, RepeatedRunsExportByteIdenticalArtifacts) {
  // The acceptance bar: repeated virtual-time runs of a 4-cell deployment
  // produce byte-identical merged traces, identical HealthReports and
  // identical flight bundles — and inline execution matches threaded.
  const FleetRunCapture a = run_fleet(4, /*threaded=*/true, 60);
  const FleetRunCapture b = run_fleet(4, /*threaded=*/true, 60);
  const FleetRunCapture inline_run = run_fleet(4, /*threaded=*/false, 60);
  EXPECT_FALSE(a.merged_trace.empty());
  EXPECT_EQ(a.merged_trace, b.merged_trace);
  EXPECT_EQ(a.health_json, b.health_json);
  EXPECT_EQ(a.flight, b.flight);
  EXPECT_EQ(a.merged_trace, inline_run.merged_trace);
  EXPECT_EQ(a.health_json, inline_run.health_json);
}

TEST(FleetPlane, MergedTraceDeclaresPerCellDrops) {
  reset_global_obs();
  rt::DeploymentConfig cfg = fleet_config(2, /*threaded=*/false);
  cfg.trace_capacity = 64;  // small ring: wrap-around loss is certain
  rt::GnbDeployment dep(cfg);
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots(40).ok());
  const std::string trace = dep.export_merged_trace();
  ASSERT_NE(dep.trace_ring(0), nullptr);
  EXPECT_GT(dep.trace_ring(0)->dropped(), 0u);
  // Drop accounting appears verbatim in the metadata, never silently.
  EXPECT_NE(trace.find("\"rings\":["), std::string::npos);
  EXPECT_NE(trace.find("\"dropped\":" +
                       std::to_string(dep.trace_ring(0)->dropped())),
            std::string::npos);
}

TEST(FleetPlane, BreachedSloJournalsAndCapturesFlightBundle) {
  reset_global_obs();
  rt::DeploymentConfig cfg = fleet_config(2, /*threaded=*/true);
  // A floor no real run can meet (PRB utilization > 150%): every window
  // must breach, at fleet scope, deterministically.
  cfg.slos = {{"impossible_floor", obs::SloMetric::kPrbUtilizationFloor,
               obs::SloScope::kFleet, 1.5}};
  rt::GnbDeployment dep(cfg);
  ASSERT_TRUE(dep.status().ok());

  uint64_t hook_fires = 0;
  dep.set_breach_hook([&hook_fires](const obs::HealthReport& h) {
    ++hook_fires;
    EXPECT_FALSE(h.healthy);
    EXPECT_EQ(h.breaches, 1u);
  });
  ASSERT_TRUE(dep.run_slots(60).ok());  // 3 windows of 20 slots

  EXPECT_EQ(dep.slo_breach_windows(), 3u);
  EXPECT_EQ(hook_fires, 3u);
  EXPECT_FALSE(dep.last_health().healthy);

  // Every breached verdict is journaled as kSloBreach under domain "slo".
  uint64_t journaled = 0;
  for (const obs::AnomalyRecord& r : obs::AnomalyJournal::global().snapshot()) {
    if (r.kind == obs::AnomalyKind::kSloBreach) {
      ++journaled;
      EXPECT_EQ(r.domain, "slo");
    }
  }
  EXPECT_EQ(journaled, 3u);

  const std::string bundle = dep.capture_flight_bundle("slo_breach");
  EXPECT_NE(bundle.find("\"waran_flight_bundle\":1"), std::string::npos);
  EXPECT_NE(bundle.find("\"reason\":\"slo_breach\""), std::string::npos);
  EXPECT_NE(bundle.find("slo_breach"), std::string::npos);
  EXPECT_NE(bundle.find("\"replay\":"), std::string::npos);
}

TEST(SloEngine, DefaultObjectivesPassOnAHealthyRun) {
  reset_global_obs();
  rt::GnbDeployment dep(fleet_config(2, /*threaded=*/true));
  ASSERT_TRUE(dep.status().ok());
  ASSERT_TRUE(dep.run_slots(40).ok());
  const obs::HealthReport& h = dep.last_health();
  EXPECT_TRUE(h.healthy);
  EXPECT_EQ(h.breaches, 0u);
  // 4 cell-scoped objectives x 2 cells + 1 fleet-scoped floor.
  EXPECT_EQ(h.verdicts.size(), 4u * 2u + 1u);
  EXPECT_EQ(dep.slo_breach_windows(), 0u);
}

}  // namespace
}  // namespace waran
