// Disassembler tests: structural completeness (every section represented),
// stable opcode naming, and usability on the real plugin corpus.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "sched/plugins.h"
#include "tests/wasm_test_util.h"
#include "wasm/disasm.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

using namespace wasmtest;

TEST(Disasm, EmptyModule) {
  ModuleBuilder mb;
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(wasm::disassemble(*module), "(module\n)\n");
}

TEST(Disasm, CoversAllSections) {
  ModuleBuilder mb;
  mb.import_func("env", "host", FuncType{{ValType::kI32}, {}});
  mb.add_memory(2, 8, "memory");
  mb.add_global(ValType::kI64, true, wasm::Value::from_i64(-5));
  FuncType sig{{}, {ValType::kI32}};
  auto& f = mb.add_func(sig, "answer");
  f.i32_const(42).end();
  mb.add_table(1, 1);
  mb.add_elem(0, {f.index()});
  const uint8_t data[] = {1, 2};
  mb.add_data(64, data);

  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  std::string text = wasm::disassemble(*module);

  EXPECT_NE(text.find("(import \"env\" \"host\" (func (param i32)))"), std::string::npos)
      << text;
  EXPECT_NE(text.find("(memory 2 8)"), std::string::npos);
  EXPECT_NE(text.find("(table 1 1 funcref)"), std::string::npos);
  EXPECT_NE(text.find("(mut i64) (i64.const -5)"), std::string::npos);
  EXPECT_NE(text.find("(export \"answer\" (func 1))"), std::string::npos);
  EXPECT_NE(text.find("i32.const 42"), std::string::npos);
}

TEST(Disasm, ControlFlowIndentation) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).if_(BlockT::i32());
  f.i32_const(1);
  f.else_();
  f.block().i32_const(5).br_if(0).end();
  f.i32_const(2);
  f.end().end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  std::string text = wasm::disassemble(*module);
  // if carries its result annotation; nesting indents the inner block body.
  EXPECT_NE(text.find("if (result i32)"), std::string::npos) << text;
  EXPECT_NE(text.find("\n      block"), std::string::npos) << text;
  EXPECT_NE(text.find("br_if 0"), std::string::npos);
}

TEST(Disasm, MemargRendering) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(0).load(Op::kI32Load, 16, 2).end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  std::string text = wasm::disassemble(*module);
  EXPECT_NE(text.find("i32.load offset=16 align=4"), std::string::npos) << text;
}

TEST(Disasm, WholePluginCorpusDisassembles) {
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok());
    auto module = wasm::decode_module(*bytes);
    ASSERT_TRUE(module.ok());
    std::string text = wasm::disassemble(*module);
    EXPECT_NE(text.find("(export \"schedule\""), std::string::npos) << kind;
    EXPECT_GT(text.size(), 500u) << kind;
    // Balanced parens is a cheap well-formedness proxy.
    EXPECT_EQ(std::count(text.begin(), text.end(), '('),
              std::count(text.begin(), text.end(), ')'))
        << kind;
  }
}

// Round-trip smoke test for the micro-op listing: every resolved branch
// target printed by disassemble_translated must land inside the stream it
// was printed from, fused superinstructions show up on the real scheduler
// corpus, and every line of control flow carries its baked fuel charge.
TEST(Disasm, TranslatedStreamRoundTrips) {
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok());
    auto module = wasm::decode_module(*bytes);
    ASSERT_TRUE(module.ok());
    ASSERT_TRUE(wasm::validate_module(*module).ok());
    ASSERT_TRUE(wasm::translate_module(*module).ok());
    ASSERT_TRUE(module->translated);

    bool any_fused = false;
    for (uint32_t i = 0; i < module->codes.size(); ++i) {
      const size_t num_ops = module->translated->funcs[i].ops.size();
      std::string text = wasm::disassemble_translated(*module, i);
      ASSERT_GT(num_ops, 0u) << kind << " func " << i;
      // Header + one line per micro-op.
      EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')),
                num_ops + 1)
          << kind << " func " << i << "\n"
          << text;
      // Every resolved target must point inside this stream.
      for (size_t pos = text.find("-> @"); pos != std::string::npos;
           pos = text.find("-> @", pos + 4)) {
        size_t digits = pos + 4;
        if (text.compare(digits, 3, "ret") == 0) continue;
        ASSERT_LT(digits, text.size());
        ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(text[digits]))) << text;
        EXPECT_LT(std::strtoul(text.c_str() + digits, nullptr, 10), num_ops)
            << kind << " func " << i << "\n"
            << text;
      }
      // Fuel segments are baked into the stream, not recomputed at run time.
      EXPECT_NE(text.find("charge="), std::string::npos)
          << kind << " func " << i << "\n"
          << text;
      if (text.find("LCAdd") != std::string::npos ||
          text.find("LL") != std::string::npos ||
          text.find("BrIfL") != std::string::npos) {
        any_fused = true;
      }
    }
    EXPECT_TRUE(any_fused) << kind << ": no fused superinstructions in corpus";
  }
}

TEST(Disasm, TranslatedStreamWithoutAttachedTranslation) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).i32_const(7).op(Op::kI32Add).end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(wasm::validate_module(*module).ok());
  // No translate_module call: the disassembler lowers on the fly.
  std::string text = wasm::disassemble_translated(*module, 0);
  EXPECT_NE(text.find("uops"), std::string::npos) << text;
  EXPECT_NE(text.find("charge="), std::string::npos) << text;
  EXPECT_NE(text.find("LCAddI32 l0, 7"), std::string::npos) << text;
}

TEST(Disasm, BrTableTargetsListed) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {}}, "f");
  f.block().block().local_get(0).br_table({0, 1}, 1).end().end().end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  EXPECT_NE(wasm::disassemble(*module).find("br_table 0 1 1"), std::string::npos);
}

}  // namespace
}  // namespace waran
