// W program corpus: nontrivial algorithms compiled by wcc and executed in
// the engine, validated against C++ reference implementations. This is the
// breadth test for the whole toolchain (parser edge cases, codegen for
// nested control flow, i64 arithmetic, memory addressing) and exercises
// the compute-plugin use cases the paper lists in §3 (e.g. FEC-adjacent
// bit-twiddling like CRC).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "plugin/plugin.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

using wasm::TypedValue;

std::unique_ptr<wasm::Instance> instantiate(const char* src) {
  auto bytes = wcc::compile(src);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  if (!bytes.ok()) return nullptr;
  auto module = wasm::decode_module(*bytes);
  EXPECT_TRUE(module.ok());
  EXPECT_TRUE(wasm::validate_module(*module).ok());
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), {});
  EXPECT_TRUE(inst.ok());
  return inst.ok() ? std::move(*inst) : nullptr;
}

// --- CRC-32 (IEEE 802.3, bitwise). ---

uint32_t crc32_reference(const std::vector<uint8_t>& data) {
  uint32_t crc = 0xffffffff;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1)));
    }
  }
  return ~crc;
}

TEST(WProgram, Crc32MatchesReference) {
  // W deliberately has no bitwise operators (they are rarely needed in
  // scheduler logic), so the CRC plugin builds XOR and logical shifts from
  // div/mod arithmetic — a worst-case stress of signed wraparound codegen.
  const char* kPractical = R"(
    // XOR via i64 addition with carry suppression is still awkward; the
    // canonical W approach: process bits with div/mod only.
    fn bit(x: i32, k: i32) -> i32 {
      var v: i32 = x;
      var i: i32 = 0;
      while (i < k) {
        // logical shift right by one
        if (v < 0) {
          v = (v - 2147483647 - 1) / 2 + 1073741824;
        } else {
          v = v / 2;
        }
        i = i + 1;
      }
      return v - (v / 2) * 2;
    }
    fn xor32(a: i32, b: i32) -> i32 {
      var result: i32 = 0;
      var k: i32 = 0;
      var weight: i32 = 1;
      while (k < 32) {
        var x: i32 = bit(a, k) + bit(b, k);
        x = x - (x / 2) * 2;
        if (x != 0) { result = result + weight; }
        weight = weight * 2;   // wraps to INT_MIN at k=30->31, then 0
        k = k + 1;
      }
      return result;
    }
    fn shr1u(x: i32) -> i32 {
      if (x < 0) {
        return (x - 2147483647 - 1) / 2 + 1073741824;
      }
      return x / 2;
    }
    export fn run() -> i32 {
      var n: i32 = input_len();
      input_read(0, 0, n);
      var crc: i32 = -1;
      var i: i32 = 0;
      while (i < n) {
        crc = xor32(crc, load8u(i));
        var k: i32 = 0;
        while (k < 8) {
          var lsb: i32 = crc - (crc / 2) * 2;
          if (crc < 0) { lsb = crc - shr1u(crc) * 2; }
          crc = shr1u(crc);
          if (lsb != 0) {
            crc = xor32(crc, -306674912);
          }
          k = k + 1;
        }
        i = i + 1;
      }
      crc = xor32(crc, -1);
      store32(4096, crc);
      output_write(4096, 4);
      return 0;
    }
  )";
  auto bytes = wcc::compile(kPractical);
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  plugin::PluginLimits limits;
  limits.fuel_per_call = 50'000'000;
  auto p = plugin::Plugin::load(*bytes, {}, limits);
  ASSERT_TRUE(p.ok()) << p.error().message;

  for (const std::vector<uint8_t>& data :
       {std::vector<uint8_t>{}, std::vector<uint8_t>{'a'},
        std::vector<uint8_t>{'1', '2', '3', '4', '5', '6', '7', '8', '9'},
        std::vector<uint8_t>(64, 0xff)}) {
    auto out = (*p)->call("run", data);
    ASSERT_TRUE(out.ok()) << out.error().message;
    uint32_t got;
    std::memcpy(&got, out->data(), 4);
    EXPECT_EQ(got, crc32_reference(data)) << "len " << data.size();
  }
}

// --- Binary GCD. ---

TEST(WProgram, GcdMatchesStdGcd) {
  auto inst = instantiate(R"(
    export fn gcd(a: i32, b: i32) -> i32 {
      while (b != 0) {
        var t: i32 = b;
        b = a % b;
        a = t;
      }
      return a;
    }
  )");
  ASSERT_NE(inst, nullptr);
  for (int32_t a : {1, 12, 35, 1071, 46368, 1000000}) {
    for (int32_t b : {1, 18, 49, 462, 75025, 2048}) {
      auto r = inst->call("gcd", std::vector<TypedValue>{TypedValue::i32(a),
                                                         TypedValue::i32(b)});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ((*r)->value.as_i32(), std::gcd(a, b)) << a << "," << b;
    }
  }
}

// --- Integer square root by Newton iteration (uses f64 internally). ---

TEST(WProgram, IsqrtNewton) {
  auto inst = instantiate(R"(
    export fn isqrt(n: i32) -> i32 {
      if (n <= 0) { return 0; }
      var x: f64 = f64(n);
      var g: f64 = x;
      var i: i32 = 0;
      while (i < 40) {
        g = (g + x / g) * 0.5;
        i = i + 1;
      }
      var r: i32 = i32(g);
      // Newton can land one off in either direction; fix up exactly.
      while (r * r > n) { r = r - 1; }
      while ((r + 1) * (r + 1) <= n) { r = r + 1; }
      return r;
    }
  )");
  ASSERT_NE(inst, nullptr);
  for (int32_t n : {0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 10000, 999999, 46340}) {
    auto r = inst->call("isqrt", std::vector<TypedValue>{TypedValue::i32(n)});
    ASSERT_TRUE(r.ok());
    int32_t want = static_cast<int32_t>(std::sqrt(static_cast<double>(n)));
    while (want * want > n) --want;
    while ((want + 1) * (want + 1) <= n) ++want;
    EXPECT_EQ((*r)->value.as_i32(), want) << n;
  }
}

// --- In-memory insertion sort over the plugin ABI. ---

TEST(WProgram, InsertionSortBytes) {
  const char* kSrc = R"(
    export fn run() -> i32 {
      var n: i32 = input_len();
      input_read(0, 0, n);
      var i: i32 = 1;
      while (i < n) {
        var key: i32 = load8u(i);
        var j: i32 = i - 1;
        while (j >= 0 && load8u(j) > key) {
          store8(j + 1, load8u(j));
          j = j - 1;
        }
        store8(j + 1, key);
        i = i + 1;
      }
      output_write(0, n);
      return 0;
    }
  )";
  auto bytes = wcc::compile(kSrc);
  ASSERT_TRUE(bytes.ok());
  auto p = plugin::Plugin::load(*bytes);
  ASSERT_TRUE(p.ok());

  Xoshiro256 rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> data(rng.below(200));
    for (auto& b : data) b = static_cast<uint8_t>(rng.next());
    std::vector<uint8_t> want = data;
    std::sort(want.begin(), want.end());
    auto out = (*p)->call("run", data);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, want);
  }
}

// --- 64-bit Collatz step counting (i64 throughout). ---

TEST(WProgram, CollatzStepsI64) {
  auto inst = instantiate(R"(
    export fn steps(n0: i64) -> i32 {
      var n: i64 = n0;
      var count: i32 = 0;
      while (n != i64(1)) {
        if (n % i64(2) == i64(0)) {
          n = n / i64(2);
        } else {
          n = n * i64(3) + i64(1);
        }
        count = count + 1;
      }
      return count;
    }
  )");
  ASSERT_NE(inst, nullptr);
  auto reference = [](int64_t n) {
    int c = 0;
    while (n != 1) {
      n = n % 2 == 0 ? n / 2 : 3 * n + 1;
      ++c;
    }
    return c;
  };
  for (int64_t n : {1LL, 2LL, 7LL, 27LL, 97LL, 871LL, 6171LL}) {
    auto r = inst->call("steps", std::vector<TypedValue>{TypedValue::i64(n)});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->value.as_i32(), reference(n)) << n;
  }
}

// --- Fixed-point EWMA filter (the building block of PF scheduling). ---

TEST(WProgram, EwmaFilterMatchesDouble) {
  const char* kSrc = R"(
    global avg: f64 = 0.0;
    export fn feed(sample: f64, inv_tc: f64) -> f64 {
      avg = avg + (sample - avg) * inv_tc;
      return avg;
    }
  )";
  auto inst = instantiate(kSrc);
  ASSERT_NE(inst, nullptr);
  double ref = 0.0;
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    double sample = rng.uniform() * 1e7;
    ref += (sample - ref) * 0.01;
    auto r = inst->call("feed", std::vector<TypedValue>{TypedValue::f64(sample),
                                                        TypedValue::f64(0.01)});
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ((*r)->value.as_f64(), ref);
  }
}

}  // namespace
}  // namespace waran
