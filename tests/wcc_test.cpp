// End-to-end tests for the W compiler: compile W source, validate the
// produced module with the engine's validator, instantiate, run, and check
// results. Also negative tests for type/semantic errors.
#include <gtest/gtest.h>

#include <memory>

#include "plugin/plugin.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

using wasm::TypedValue;

std::unique_ptr<wasm::Instance> compile_and_instantiate(
    const char* source, const wasm::Linker& linker = {}) {
  auto bytes = wcc::compile(source);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  if (!bytes.ok()) return nullptr;
  auto module = wasm::decode_module(*bytes);
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().message);
  if (!module.ok()) return nullptr;
  auto st = wasm::validate_module(*module);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  if (!st.ok()) return nullptr;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  EXPECT_TRUE(inst.ok()) << (inst.ok() ? "" : inst.error().message);
  if (!inst.ok()) return nullptr;
  return std::move(*inst);
}

int32_t run_i32(wasm::Instance& inst, const char* fn,
                std::vector<TypedValue> args = {}) {
  auto r = inst.call(fn, args);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok() || !r->has_value()) return INT32_MIN;
  return (*r)->value.as_i32();
}

TEST(Wcc, ReturnConstant) {
  auto inst = compile_and_instantiate("export fn f() -> i32 { return 42; }");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 42);
}

TEST(Wcc, ArithmeticPrecedence) {
  auto inst = compile_and_instantiate(
      "export fn f() -> i32 { return 2 + 3 * 4 - 10 / 2; }");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 9);
}

TEST(Wcc, ParamsAndLocals) {
  auto inst = compile_and_instantiate(R"(
    export fn f(a: i32, b: i32) -> i32 {
      var sum: i32 = a + b;
      var diff: i32 = a - b;
      return sum * diff;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(7), TypedValue::i32(3)}), 40);
}

TEST(Wcc, IfElseChain) {
  auto inst = compile_and_instantiate(R"(
    export fn sign(x: i32) -> i32 {
      if (x > 0) { return 1; }
      else if (x < 0) { return -1; }
      else { return 0; }
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "sign", {TypedValue::i32(99)}), 1);
  EXPECT_EQ(run_i32(*inst, "sign", {TypedValue::i32(-5)}), -1);
  EXPECT_EQ(run_i32(*inst, "sign", {TypedValue::i32(0)}), 0);
}

TEST(Wcc, WhileLoopSum) {
  auto inst = compile_and_instantiate(R"(
    export fn sum(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 1;
      while (i <= n) {
        acc = acc + i;
        i = i + 1;
      }
      return acc;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "sum", {TypedValue::i32(100)}), 5050);
  EXPECT_EQ(run_i32(*inst, "sum", {TypedValue::i32(0)}), 0);
}

TEST(Wcc, BreakAndContinue) {
  auto inst = compile_and_instantiate(R"(
    // Sum of odd numbers below the first multiple of 13 above 20.
    export fn f() -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (1) {
        i = i + 1;
        if (i > 20 && i % 13 == 0) { break; }
        if (i % 2 == 0) { continue; }
        acc = acc + i;
      }
      return acc;
    }
  )");
  ASSERT_NE(inst, nullptr);
  // Odd numbers 1..25 (26 is the break point): 13*13 = 169.
  EXPECT_EQ(run_i32(*inst, "f"), 169);
}

TEST(Wcc, NestedLoopBreakTargetsInnermost) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      var count: i32 = 0;
      var i: i32 = 0;
      while (i < 3) {
        var j: i32 = 0;
        while (1) {
          j = j + 1;
          if (j >= 4) { break; }
        }
        count = count + j;
        i = i + 1;
      }
      return count;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 12);
}

TEST(Wcc, FunctionCallsAndRecursion) {
  auto inst = compile_and_instantiate(R"(
    fn fib(n: i32) -> i32 {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    export fn f(n: i32) -> i32 { return fib(n); }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(12)}), 144);
}

TEST(Wcc, ForwardReferenceAllowed) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 { return helper() + 1; }
    fn helper() -> i32 { return 41; }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 42);
}

TEST(Wcc, FloatArithmeticAndCasts) {
  auto inst = compile_and_instantiate(R"(
    export fn f(a: f64, b: f64) -> i32 {
      var ratio: f64 = a / b;
      return i32(ratio * 100.0);
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::f64(3.0), TypedValue::f64(4.0)}), 75);
}

TEST(Wcc, FloatIntrinsics) {
  auto inst = compile_and_instantiate(R"(
    export fn f(x: f64) -> i32 {
      return i32(sqrt(x) + floor(0.9) + ceil(0.1) + abs(-2.0));
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::f64(16.0)}), 7);  // 4 + 0 + 1 + 2
}

TEST(Wcc, SaturatingCastDoesNotTrap) {
  auto inst = compile_and_instantiate(
      "export fn f(x: f64) -> i32 { return i32(x); }");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::f64(1e300)}), INT32_MAX);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::f64(-1e300)}), INT32_MIN);
}

TEST(Wcc, I64Support) {
  auto inst = compile_and_instantiate(R"(
    export fn f(a: i32) -> i32 {
      var big: i64 = i64(a) * i64(1000000);
      return i32(big % i64(97));
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(1234)}),
            static_cast<int32_t>((1234LL * 1000000LL) % 97));
}

TEST(Wcc, GlobalsPersistAcrossCalls) {
  auto inst = compile_and_instantiate(R"(
    global counter: i32 = 100;
    export fn bump() -> i32 {
      counter = counter + 1;
      return counter;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "bump"), 101);
  EXPECT_EQ(run_i32(*inst, "bump"), 102);
}

TEST(Wcc, MemoryIntrinsics) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      store32(16, 7777);
      store8(20, 255);
      storef64(24, 2.5);
      return load32(16) + load8u(20) + i32(loadf64(24) * 2.0);
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 7777 + 255 + 5);
}

TEST(Wcc, MemoryGrowIntrinsic) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      var before: i32 = memory_size();
      memory_grow(2);
      return memory_size() - before;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 2);
}

TEST(Wcc, ShortCircuitEvaluation) {
  // The right side of && must not execute when the left is false — here the
  // right side would trap by loading out of bounds.
  auto inst = compile_and_instantiate(R"(
    export fn f(cond: i32) -> i32 {
      if (cond && load32(99999999)) { return 1; }
      return 0;
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(0)}), 0);
  auto r = inst->call("f", std::vector<TypedValue>{TypedValue::i32(1)});
  EXPECT_FALSE(r.ok());  // left true -> right side evaluates -> traps
}

TEST(Wcc, LogicalOrNormalizesToBool) {
  auto inst = compile_and_instantiate(
      "export fn f(a: i32, b: i32) -> i32 { return a || b; }");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(0), TypedValue::i32(7)}), 1);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(0), TypedValue::i32(0)}), 0);
}

TEST(Wcc, TrapIntrinsic) {
  auto inst = compile_and_instantiate("export fn f() -> i32 { trap(); return 0; }");
  ASSERT_NE(inst, nullptr);
  auto r = inst->call("f", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kTrap);
}

TEST(Wcc, MissingReturnTrapsAtRuntime) {
  auto inst = compile_and_instantiate(R"(
    export fn f(x: i32) -> i32 {
      if (x > 0) { return 1; }
      // falls off the end otherwise
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(5)}), 1);
  auto r = inst->call("f", std::vector<TypedValue>{TypedValue::i32(0)});
  EXPECT_FALSE(r.ok());
}

TEST(Wcc, ScopingShadowingInBlocks) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      var x: i32 = 1;
      if (1) {
        var x: i32 = 10;   // separate scope: allowed
        x = x + 5;
      }
      return x;            // outer x unchanged
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 1);
}

// --- Host-function integration through the plugin ABI. ---

TEST(Wcc, PluginAbiEcho) {
  // A W plugin that reads its input, adds one to each byte, writes it back.
  const char* src = R"(
    export fn run() -> i32 {
      var n: i32 = input_len();
      input_read(0, 0, n);
      var i: i32 = 0;
      while (i < n) {
        store8(i, load8u(i) + 1);
        i = i + 1;
      }
      output_write(0, n);
      return 0;
    }
  )";
  auto bytes = wcc::compile(src);
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  auto plugin = plugin::Plugin::load(*bytes);
  ASSERT_TRUE(plugin.ok()) << plugin.error().message;
  std::vector<uint8_t> input = {1, 2, 3, 250};
  auto out = (*plugin)->call("run", input);
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_EQ(*out, (std::vector<uint8_t>{2, 3, 4, 251}));
}

// --- Compile-error diagnostics. ---

TEST(WccErrors, TypeMismatch) {
  auto r = wcc::compile("export fn f() -> i32 { return 1 + 2.0; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("mismatch"), std::string::npos);
}

TEST(WccErrors, UndeclaredVariable) {
  auto r = wcc::compile("export fn f() -> i32 { return nope; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("undeclared"), std::string::npos);
}

TEST(WccErrors, UndefinedFunction) {
  auto r = wcc::compile("export fn f() -> i32 { return g(); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("undefined function"), std::string::npos);
}

TEST(WccErrors, WrongArgCount) {
  auto r = wcc::compile(R"(
    fn g(a: i32) -> i32 { return a; }
    export fn f() -> i32 { return g(1, 2); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("argument"), std::string::npos);
}

TEST(WccErrors, BreakOutsideLoop) {
  auto r = wcc::compile("export fn f() { break; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("break"), std::string::npos);
}

TEST(WccErrors, DuplicateFunction) {
  auto r = wcc::compile("fn f() {} fn f() {}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("duplicate"), std::string::npos);
}

TEST(WccErrors, RedeclarationInSameScope) {
  auto r = wcc::compile("export fn f() { var x: i32; var x: i32; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("redeclaration"), std::string::npos);
}

TEST(WccErrors, FloatModulo) {
  auto r = wcc::compile("export fn f() -> f64 { return 1.0 % 2.0; }");
  ASSERT_FALSE(r.ok());
}

TEST(WccErrors, ParseErrorHasLocation) {
  auto r = wcc::compile("export fn f( { }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("parse error"), std::string::npos);
}

TEST(WccErrors, VoidInExpression) {
  auto r = wcc::compile(R"(
    fn g() {}
    export fn f() -> i32 { return g() + 1; }
  )");
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace waran

// Appended: parser/lexer edge cases.
namespace waran {
namespace {

TEST(WccParser, OperatorPrecedenceFull) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      // ! binds tightest, then * / %, + -, comparisons, &&, ||.
      return 1 + 2 * 3 < 8 || !(4 % 3 == 1) && 0;
    }
  )");
  ASSERT_NE(inst, nullptr);
  // 1+6=7 < 8 -> 1; short-circuits past the rest.
  EXPECT_EQ(run_i32(*inst, "f"), 1);
}

TEST(WccParser, CommentsAndWhitespaceEverywhere) {
  auto inst = compile_and_instantiate(
      "// leading comment\n"
      "export\tfn f( )->i32{//inline\nreturn\n42\n;//trailing\n}\n// eof comment");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 42);
}

TEST(WccParser, DeepElseIfChain) {
  std::string src = "export fn f(x: i32) -> i32 {\n";
  for (int i = 0; i < 40; ++i) {
    src += (i == 0 ? "  if" : "  else if");
    src += " (x == " + std::to_string(i) + ") { return " + std::to_string(i * 10) + "; }\n";
  }
  src += "  else { return -1; }\n}\n";
  auto inst = compile_and_instantiate(src.c_str());
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(0)}), 0);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(39)}), 390);
  EXPECT_EQ(run_i32(*inst, "f", {TypedValue::i32(77)}), -1);
}

TEST(WccParser, FloatLiteralForms) {
  auto inst = compile_and_instantiate(R"(
    export fn f() -> i32 {
      var a: f64 = 1.5;
      var b: f64 = 2e3;
      var c: f64 = 1.25e-2;
      return i32(a * 2.0) + i32(b) + i32(c * 800.0);
    }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), 3 + 2000 + 10);
}

TEST(WccParser, GlobalNegativeAndFloatInitializers) {
  auto inst = compile_and_instantiate(R"(
    global gi: i32 = -17;
    global gf: f64 = -2.5;
    export fn f() -> i32 { return gi + i32(gf * -2.0); }
  )");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(run_i32(*inst, "f"), -17 + 5);
}

TEST(WccErrors, ExternSignatureMismatchFailsInstantiation) {
  // The extern declares (i32)->i32 but the host registers (i32,i32)->i32:
  // instantiation must reject the signature mismatch.
  auto bytes = wcc::compile(R"(
    extern fn helper(x: i32) -> i32;
    export fn f() -> i32 { return helper(1); }
  )");
  ASSERT_TRUE(bytes.ok());
  wasm::Linker linker;
  linker.register_func(
      "env", "helper",
      wasm::HostFunc{wasm::FuncType{{wasm::ValType::kI32, wasm::ValType::kI32},
                                    {wasm::ValType::kI32}},
                     [](wasm::HostContext&, std::span<const wasm::Value>)
                         -> Result<std::optional<wasm::Value>> {
                       return std::optional<wasm::Value>(wasm::Value::from_i32(0));
                     }});
  auto module = wasm::decode_module(*bytes);
  ASSERT_TRUE(module.ok());
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.error().code, Error::Code::kValidation);
}

TEST(WccErrors, ExternCollidingWithUserFunction) {
  auto r = wcc::compile(R"(
    extern fn f(x: i32) -> i32;
    fn f(x: i32) -> i32 { return x; }
  )");
  ASSERT_FALSE(r.ok());
}

TEST(WccErrors, IntegerLiteralOverflow) {
  auto r = wcc::compile("export fn f() -> i32 { return 3000000000; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("range"), std::string::npos);
}

}  // namespace
}  // namespace waran
