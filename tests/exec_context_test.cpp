// Tests for the explicit-frame execution core: deep wasm->wasm recursion on
// interpreter frames (no native recursion), re-entrant host->wasm calls on
// the shared ExecContext, segment-level fuel accounting that never exceeds
// the budget, per-call CallOptions/CallStats, and the zero-allocation
// warm-call guarantee (tests/heap_probe_guard.h overrides this binary's
// operator new to count real heap traffic through the heap probe).
#include <gtest/gtest.h>

#include <chrono>

#include "common/tracked_alloc.h"
#include "tests/heap_probe_guard.h"
#include "tests/wasm_test_util.h"

namespace waran::wasmtest {
namespace {

using wasm::CallOptions;
using wasm::CallStats;
using wasm::HostContext;
using wasm::HostFunc;
using wasm::Value;

TEST(ExecContext, DeepRecursionRunsOnInterpreterFrames) {
  // 20k+ wasm frames would overflow the native stack if calls recursed
  // natively; on explicit frames this is just vector growth.
  wasm::InstanceOptions options;
  options.max_call_depth = 50'000;
  auto inst = instantiate(recursive_module(), {}, options);
  ASSERT_NE(inst, nullptr);

  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(20'000)}};
  CallStats stats;
  auto r = inst->call("down", args, CallOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  EXPECT_EQ((*r)->value.as_i32(), 0);
  EXPECT_EQ(stats.peak_stack_depth, 20'001u);
}

TEST(ExecContext, DeepRecursionTrapsCleanlyAtDepthLimit) {
  wasm::InstanceOptions options;
  options.max_call_depth = 10'000;
  auto inst = instantiate(recursive_module(), {}, options);
  ASSERT_NE(inst, nullptr);

  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(100'000)}};
  Error err = call_expect_trap(*inst, "down", args);
  EXPECT_NE(err.message.find("call stack"), std::string::npos) << err.message;

  // The trap unwound the shared context: a shallow call still works.
  std::vector<TypedValue> ok_args{{ValType::kI32, Value::from_i32(5)}};
  EXPECT_EQ(call_i32(*inst, "down", ok_args), 0);
}

TEST(ExecContext, ReentrantHostToWasmSharesOneContext) {
  auto inst = instantiate(reentrant_module(), reenter_linker("leaf"));
  ASSERT_NE(inst, nullptr);

  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(21)}};
  CallStats stats;
  auto r = inst->call("outer", args, CallOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  EXPECT_EQ((*r)->value.as_i32(), 43);  // 21 * 2 + 1
  // The nested leaf frame sat on top of outer's frame in the same context.
  EXPECT_EQ(stats.peak_stack_depth, 2u);

  // Many re-entrant rounds neither corrupt nor grow the shared stacks.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(call_i32(*inst, "outer", args), 43);
  }
}

TEST(ExecContext, ReentrantTrapUnwindsSharedContext) {
  // The host re-enters the instance calling an export that recurses past
  // the depth limit; the resulting trap must unwind both nesting levels.
  wasm::InstanceOptions options;
  options.max_call_depth = 64;
  ModuleBuilder mb;
  uint32_t imp =
      mb.import_func("env", "reenter", FuncType{{ValType::kI32}, {ValType::kI32}});
  FunctionBuilder& down = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "down");
  down.local_get(0)
      .op(Op::kI32Eqz)
      .if_(BlockT::i32())
      .i32_const(0)
      .else_()
      .local_get(0)
      .i32_const(1)
      .op(Op::kI32Sub)
      .call(down.index())
      .end()
      .end();
  FunctionBuilder& outer =
      mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "outer");
  outer.local_get(0).call(imp).end();

  auto inst = instantiate(mb, reenter_linker("down"), options);
  ASSERT_NE(inst, nullptr);

  std::vector<TypedValue> deep{{ValType::kI32, Value::from_i32(1000)}};
  Error err = call_expect_trap(*inst, "outer", deep);
  EXPECT_NE(err.message.find("call stack"), std::string::npos) << err.message;

  std::vector<TypedValue> shallow{{ValType::kI32, Value::from_i32(3)}};
  EXPECT_EQ(call_i32(*inst, "outer", shallow), 0);
}


TEST(ExecContext, SegmentFuelMatchesInstructionCountExactly) {
  auto inst = instantiate(branchy_module());
  ASSERT_NE(inst, nullptr);
  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(10)}};

  // Reference cost: unmetered run reports retired instructions.
  CallOptions unmetered;
  unmetered.fuel = 0;
  CallStats ref;
  auto r = inst->call("sum", args, unmetered, &ref);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->value.as_i32(), 5 + 7 + 9 + 1 + 3);  // odd numbers <= 10
  ASSERT_GT(ref.instrs_retired, 0u);
  EXPECT_EQ(ref.fuel_used, ref.instrs_retired);

  // A budget of exactly the instruction count succeeds...
  CallOptions exact;
  exact.fuel = ref.instrs_retired;
  CallStats stats;
  ASSERT_TRUE(inst->call("sum", args, exact, &stats).ok());
  EXPECT_EQ(stats.fuel_used, ref.instrs_retired);

  // ...and EVERY smaller budget traps with kFuelExhausted without ever
  // charging more than the budget (segment metering may stop short, but
  // can never overdraw).
  for (uint64_t budget = 1; budget < ref.instrs_retired; ++budget) {
    CallOptions limited;
    limited.fuel = budget;
    CallStats st;
    auto res = inst->call("sum", args, limited, &st);
    ASSERT_FALSE(res.ok()) << "budget " << budget << " unexpectedly sufficed";
    EXPECT_EQ(res.error().code, Error::Code::kFuelExhausted) << res.error().message;
    EXPECT_LE(st.fuel_used, budget);
    EXPECT_LE(st.instrs_retired, budget);
  }
}

TEST(ExecContext, PerCallFuelRestoresInstanceState) {
  auto inst = instantiate(branchy_module());
  ASSERT_NE(inst, nullptr);
  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(4)}};

  inst->set_fuel(1'000'000);
  CallOptions opts;
  opts.fuel = 500;  // fresh per-call budget
  ASSERT_TRUE(inst->call("sum", args, opts, nullptr).ok());
  EXPECT_TRUE(inst->fuel_enabled());
  EXPECT_EQ(inst->fuel(), 1'000'000u);  // untouched by the per-call budget

  // fuel = 0 runs unmetered even while instance-level metering is armed.
  CallOptions unmetered;
  unmetered.fuel = 0;
  ASSERT_TRUE(inst->call("sum", args, unmetered, nullptr).ok());
  EXPECT_TRUE(inst->fuel_enabled());
  EXPECT_EQ(inst->fuel(), 1'000'000u);

  // Default options inherit the instance-level state and consume from it.
  ASSERT_TRUE(inst->call("sum", args).ok());
  EXPECT_LT(inst->fuel(), 1'000'000u);
}

TEST(ExecContext, DeadlineTrapsUnboundedLoop) {
  ModuleBuilder mb;
  FunctionBuilder& f = mb.add_func(FuncType{{}, {}}, "spin");
  f.loop().br(0).end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  CallOptions opts;
  opts.fuel = 0;  // unmetered: only the wall-clock deadline can stop it
  opts.deadline = std::chrono::milliseconds(20);
  CallStats stats;
  auto r = inst->call("spin", {}, opts, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kFuelExhausted) << r.error().message;
  EXPECT_GE(stats.wall_ns, 20'000'000u);
  EXPECT_GT(stats.instrs_retired, 0u);
}

TEST(ExecContext, WarmCallMakesNoHeapAllocations) {
  // work(n): the branchy loop plus a wasm->wasm call, exercising frames,
  // labels, locals and the value stack — the full warm path.
  ModuleBuilder mb;
  FunctionBuilder& leaf = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "leaf");
  leaf.local_get(0).i32_const(3).op(Op::kI32Mul).end();
  FunctionBuilder& work = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  uint32_t s = work.add_local(ValType::kI32);
  work.block()
      .loop()
      .local_get(0)
      .op(Op::kI32Eqz)
      .br_if(1)
      .local_get(s)
      .local_get(0)
      .call(leaf.index())
      .op(Op::kI32Add)
      .local_set(s)
      .local_get(0)
      .i32_const(1)
      .op(Op::kI32Sub)
      .local_set(0)
      .br(0)
      .end()
      .end()
      .local_get(s)
      .end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  std::vector<TypedValue> args{{ValType::kI32, Value::from_i32(32)}};
  CallOptions opts;
  opts.fuel = 1'000'000;  // metered path must be zero-alloc too
  CallStats stats;

  // Warm-up: let ExecContext vectors reach steady-state capacity.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(inst->call("work", args, opts, &stats).ok());
  }

  const uint64_t before = heap_probe::allocations();
  bool all_ok = true;
  int32_t last = 0;
  for (int i = 0; i < 256; ++i) {
    auto r = inst->call("work", args, opts, &stats);
    all_ok = all_ok && r.ok();
    if (r.ok()) last = (*r)->value.as_i32();
  }
  const uint64_t after = heap_probe::allocations();

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(last, 3 * (32 * 33) / 2);
  EXPECT_EQ(after - before, 0u) << "warm Instance::call touched the heap";
}

}  // namespace
}  // namespace waran::wasmtest
