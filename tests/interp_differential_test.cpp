// Differential execution: the threaded (computed-goto) dispatcher, the
// tier-2 specializing dispatcher (both tiered-up-from-the-first-call and
// crossing the tier boundary mid-sweep), and the portable switch
// dispatcher are generated from the same interpreter core
// (wasm/interp_loop.inc), and this suite pins down that they stay
// observably identical — results, trap codes and messages, fuel_used,
// instrs_retired, and linear-memory contents — across a wcc program corpus,
// hand-built control-flow edge cases (including a 300-lane br_table), trap
// paths, memory.grow at its limits, re-entrant host calls, exact-boundary
// fuel sweeps, and validated random mutants of every scheduler plugin. The
// switch loop is the oracle; any divergence is a translation or dispatch
// bug, not a test environment artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "common/rng.h"
#include "sched/plugins.h"
#include "tests/wasm_test_util.h"
#include "wasm/wasm.h"
#include "wasmbuilder/builder.h"
#include "wcc/compiler.h"

namespace waran {
namespace {

using wasm::CallOptions;
using wasm::CallStats;
using wasm::Dispatch;
using wasm::FuncType;
using wasm::InstanceOptions;
using wasm::Op;
using wasm::TypedValue;
using wasm::ValType;
using wasmbuilder::ModuleBuilder;

/// Everything observable about one call, comparable field by field.
struct Outcome {
  bool ok = false;
  int error_code = 0;
  std::string message;
  bool has_value = false;
  uint64_t bits = 0;
  uint64_t fuel_used = 0;
  uint64_t instrs = 0;
  uint64_t mem_hash = 0;

  bool operator==(const Outcome&) const = default;
};

uint64_t hash_memory(const wasm::Instance& inst) {
  const wasm::Memory* mem = inst.memory();
  if (mem == nullptr) return 0;
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  const uint8_t* p = mem->data();
  for (size_t i = 0; i < mem->size_bytes(); ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

Outcome run_one(wasm::Instance& inst, const char* fn,
                const std::vector<TypedValue>& args, const CallOptions& opts) {
  Outcome o;
  CallStats stats;
  auto r = inst.call(fn, args, opts, &stats);
  o.fuel_used = stats.fuel_used;
  o.instrs = stats.instrs_retired;
  o.ok = r.ok();
  if (!r.ok()) {
    o.error_code = static_cast<int>(r.error().code);
    o.message = r.error().message;
  } else if (r->has_value()) {
    o.has_value = true;
    o.bits = (*r)->value.bits;
  }
  o.mem_hash = hash_memory(inst);
  return o;
}

/// One module instantiated four ways — switch oracle vs threaded hot path
/// vs two tier-2 variants: threshold 1 (every call runs the specialized
/// stream, rewritten from an empty profile) and threshold 2 (call #1 runs
/// tier-1 under the specializing dispatcher and gathers branch bias, call
/// #2 crosses the tier boundary mid-sweep, so the threshold crossing
/// itself is inside the comparison).
struct DiffPair {
  std::unique_ptr<wasm::Instance> oracle;    // Dispatch::kSwitch
  std::unique_ptr<wasm::Instance> threaded;  // Dispatch::kThreaded
  std::unique_ptr<wasm::Instance> spec1;     // kSpecialized, threshold 1
  std::unique_ptr<wasm::Instance> spec2;     // kSpecialized, threshold 2

  /// Runs the call on every instance and asserts identical outcomes.
  void expect_same(const char* fn, const std::vector<TypedValue>& args,
                   const CallOptions& opts = {}) {
    const Outcome a = run_one(*oracle, fn, args, opts);
    const struct {
      const char* name;
      wasm::Instance* inst;
    } others[] = {{"threaded", threaded.get()},
                  {"specialized/1", spec1.get()},
                  {"specialized/2", spec2.get()}};
    for (const auto& [name, inst] : others) {
      Outcome b = run_one(*inst, fn, args, opts);
      EXPECT_EQ(a.ok, b.ok) << fn << " (" << name << "): " << a.message
                            << " vs " << b.message;
      EXPECT_EQ(a.error_code, b.error_code) << fn << " (" << name << ")";
      EXPECT_EQ(a.message, b.message) << fn << " (" << name << ")";
      EXPECT_EQ(a.has_value, b.has_value) << fn << " (" << name << ")";
      EXPECT_EQ(a.bits, b.bits) << fn << " (" << name << ")";
      EXPECT_EQ(a.fuel_used, b.fuel_used) << fn << " (" << name << ")";
      EXPECT_EQ(a.instrs, b.instrs) << fn << " (" << name << ")";
      EXPECT_EQ(a.mem_hash, b.mem_hash) << fn << " (" << name << ")";
    }
  }
};

Result<DiffPair> make_pair_from_bytes(std::span<const uint8_t> bytes,
                                      const wasm::Linker& linker = {}) {
  WARAN_TRY(module, wasm::decode_module(bytes));
  WARAN_CHECK_OK(wasm::validate_module(module));
  WARAN_CHECK_OK(wasm::translate_module(module));
  auto shared = std::make_shared<const wasm::Module>(std::move(module));

  DiffPair pair;
  InstanceOptions opt;
  opt.dispatch = Dispatch::kSwitch;
  WARAN_TRY(sw, wasm::Instance::instantiate(shared, linker, opt));
  opt.dispatch = Dispatch::kThreaded;
  WARAN_TRY(th, wasm::Instance::instantiate(shared, linker, opt));
  opt.dispatch = Dispatch::kSpecialized;
  opt.tier_up_threshold = 1;
  WARAN_TRY(s1, wasm::Instance::instantiate(shared, linker, opt));
  opt.tier_up_threshold = 2;
  WARAN_TRY(s2, wasm::Instance::instantiate(shared, linker, opt));
  pair.oracle = std::move(sw);
  pair.threaded = std::move(th);
  pair.spec1 = std::move(s1);
  pair.spec2 = std::move(s2);
  return pair;
}

DiffPair make_pair_wcc(const char* src, const wasm::Linker& linker = {}) {
  auto bytes = wcc::compile(src);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  auto pair = make_pair_from_bytes(*bytes, linker);
  EXPECT_TRUE(pair.ok()) << (pair.ok() ? "" : pair.error().message);
  return std::move(*pair);
}

DiffPair make_pair(const ModuleBuilder& mb, const wasm::Linker& linker = {}) {
  auto bytes = mb.build();
  auto pair = make_pair_from_bytes(bytes, linker);
  EXPECT_TRUE(pair.ok()) << (pair.ok() ? "" : pair.error().message);
  return std::move(*pair);
}

TEST(InterpDifferential, ThreadedDispatchIsAvailableWhereExpected) {
#if WARAN_HAS_THREADED_DISPATCH
  auto pair = make_pair_wcc("export fn f() -> i32 { return 7; }");
  EXPECT_EQ(pair.oracle->dispatch(), Dispatch::kSwitch);
  EXPECT_EQ(pair.threaded->dispatch(), Dispatch::kThreaded);
  EXPECT_EQ(pair.spec1->dispatch(), Dispatch::kSpecialized);
  EXPECT_EQ(pair.spec2->dispatch(), Dispatch::kSpecialized);
#else
  GTEST_SKIP() << "toolchain has no computed-goto dispatch";
#endif
}

TEST(InterpDifferential, WccCorpusMatches) {
  // Programs chosen to cover the fused superinstructions (local/local and
  // local/const binops and compares, compare-and-branch), loads/stores,
  // calls, f64 math, and div/rem edge paths.
  const char* corpus[] = {
      R"(export fn work(n: i32) -> i32 {
           var acc: i32 = 0;
           var i: i32 = 0;
           while (i < n) { acc = acc + i * 7 - i / 3; i = i + 1; }
           return acc;
         })",
      R"(export fn work(n: i32) -> i32 {
           var acc: i32 = 0;
           var i: i32 = 0;
           while (i < n) {
             if (i % 3 == 0) { acc = acc + i * 7; } else { acc = acc - i / 3; }
             i = i + 1;
           }
           return acc;
         })",
      R"(export fn work(n: i32) -> f64 {
           var acc: f64 = 0.0;
           var i: i32 = 0;
           while (i < n) { acc = acc + sqrt(f64(i)) * 0.5; i = i + 1; }
           return acc;
         })",
      R"(export fn work(n: i32) -> i32 {
           var i: i32 = 0;
           var acc: i32 = 0;
           while (i < n) { store32(i * 4, i); acc = acc + load32(i * 4); i = i + 1; }
           return acc;
         })",
      R"(fn leaf(x: i32) -> i32 { return x + 1; }
         export fn work(n: i32) -> i32 {
           var acc: i32 = 0;
           var i: i32 = 0;
           while (i < n) { acc = leaf(acc); i = i + 1; }
           return acc;
         })",
  };
  for (const char* src : corpus) {
    DiffPair pair = make_pair_wcc(src);
    for (int32_t n : {0, 1, 2, 7, 100, 1000}) {
      pair.expect_same("work", {TypedValue::i32(n)});
    }
  }
}

TEST(InterpDifferential, BrTableMatches) {
  // br_table across three depths plus default, with per-arm side effects on
  // a local so divergent target resolution changes the result.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  uint32_t acc = f.add_local(ValType::kI32);
  f.block();                                // depth 2 at br_table site
  f.block();                                // depth 1
  f.block();                                // depth 0
  f.local_get(0);
  f.br_table({0, 1, 2}, 1);
  f.end();
  f.i32_const(10).local_set(acc);
  f.local_get(acc).ret();
  f.end();
  f.i32_const(20).local_set(acc);
  f.local_get(acc).ret();
  f.end();
  f.i32_const(30).local_set(acc);
  f.local_get(acc).end();

  DiffPair pair = make_pair(mb);
  for (int32_t sel : {0, 1, 2, 3, 100, -1}) {
    pair.expect_same("work", {TypedValue::i32(sel)});
  }
}

TEST(InterpDifferential, DeepBrTableMatches) {
  // 300 lanes: the lane count and the deeper targets need multi-byte LEBs,
  // and resolution unwinds through hundreds of enclosing blocks — the
  // widest dispatch shape the translator has to get right.
  constexpr uint32_t kLanes = 300;
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  uint32_t acc = f.add_local(ValType::kI32);
  for (uint32_t d = 0; d < kLanes; ++d) f.block();
  f.local_get(0);
  std::vector<uint32_t> targets(kLanes);
  std::iota(targets.begin(), targets.end(), 0u);
  f.br_table(targets, kLanes - 1);
  for (uint32_t d = 0; d < kLanes; ++d) {
    f.end();
    if (d + 1 < kLanes) {
      // Distinct side effect per arm so a mis-resolved target changes the
      // result, not just the path.
      f.i32_const(static_cast<int32_t>(d * 7 + 1)).local_set(acc);
      f.local_get(acc).ret();
    }
  }
  f.i32_const(static_cast<int32_t>(kLanes * 7 + 1)).local_set(acc);
  f.local_get(acc).end();

  DiffPair pair = make_pair(mb);
  for (int32_t sel : {0, 1, 63, 127, 128, 255, 256, 298, 299, 300, 5000, -1}) {
    pair.expect_same("work", {TypedValue::i32(sel)});
  }
}

TEST(InterpDifferential, MemoryGrowAtLimitsMatches) {
  // memory 1..4 pages. Both dispatchers must agree on every grow result
  // (previous size on success, -1 on denial), on memory.size, and on
  // whether a probe at the moving boundary traps — before, across, and at
  // the declared maximum.
  ModuleBuilder mb;
  mb.add_memory(1, 4);
  auto& g = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "grow");
  g.local_get(0).memory_grow().end();
  auto& s = mb.add_func(FuncType{{}, {ValType::kI32}}, "size");
  s.memory_size().end();
  auto& p = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "probe");
  p.local_get(0).load(Op::kI32Load).end();

  constexpr int32_t kPage = 65536;
  DiffPair pair = make_pair(mb);
  pair.expect_same("size", {});
  pair.expect_same("probe", {TypedValue::i32(kPage - 4)});      // last word, page 0
  pair.expect_same("probe", {TypedValue::i32(kPage)});          // oob before grow
  pair.expect_same("grow", {TypedValue::i32(0)});               // no-op: reports 1
  pair.expect_same("grow", {TypedValue::i32(2)});               // 1 -> 3
  pair.expect_same("probe", {TypedValue::i32(3 * kPage - 4)});  // now in bounds
  pair.expect_same("grow", {TypedValue::i32(2)});               // 3+2 > max: -1
  pair.expect_same("grow", {TypedValue::i32(1)});               // 3 -> 4 == max
  pair.expect_same("grow", {TypedValue::i32(1)});               // at max: -1
  pair.expect_same("grow", {TypedValue::i32(0x7fffffff)});      // absurd count: -1
  pair.expect_same("grow", {TypedValue::i32(0)});               // still reports 4
  pair.expect_same("size", {});
  pair.expect_same("probe", {TypedValue::i32(4 * kPage - 4)});
  pair.expect_same("probe", {TypedValue::i32(4 * kPage)});      // oob at max
}

TEST(InterpDifferential, ReentrantHostCallsMatch) {
  // outer -> host import -> back into the instance's exported leaf, all on
  // the shared ExecContext. Both dispatchers must agree across the host
  // boundary — results, metering, and where the budget dies when it runs
  // out inside the nested call.
  DiffPair pair =
      make_pair(wasmtest::reentrant_module(), wasmtest::reenter_linker("leaf"));
  for (int32_t x : {0, 1, 21, -5, 1 << 20}) {
    pair.expect_same("outer", {TypedValue::i32(x)});
  }

  const std::vector<TypedValue> args = {TypedValue::i32(21)};
  Outcome probe = run_one(*pair.oracle, "outer", args, {});
  ASSERT_TRUE(probe.ok);
  ASSERT_GT(probe.instrs, 2u);
  for (uint64_t b : {uint64_t{1}, probe.instrs - 1, probe.instrs, probe.instrs + 1}) {
    CallOptions opts;
    opts.fuel = b;
    pair.expect_same("outer", args, opts);
  }
}

TEST(InterpDifferential, LoopWithValueCarryingBranchMatches) {
  // A block-typed branch that keeps one value across the unwind, exercising
  // the (keep, height) baked into the translated branch.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  uint32_t i = f.add_local(ValType::kI32);
  f.block(wasmbuilder::BlockT{ValType::kI32});
  f.loop();
  f.local_get(i).local_get(0).op(Op::kI32GeS);
  f.if_();
  f.local_get(i).i32_const(1000).op(Op::kI32Mul).br(2);  // carries a value out
  f.end();
  f.local_get(i).i32_const(1).op(Op::kI32Add).local_set(i);
  f.br(0);
  f.end();
  f.i32_const(-1);  // unreachable filler keeping the block's type
  f.end();
  f.end();

  DiffPair pair = make_pair(mb);
  for (int32_t n : {0, 1, 5, 37}) {
    pair.expect_same("work", {TypedValue::i32(n)});
  }
}

TEST(InterpDifferential, TrapsMatch) {
  DiffPair div = make_pair_wcc(
      "export fn work(a: i32, b: i32) -> i32 { return a / b; }");
  div.expect_same("work", {TypedValue::i32(7), TypedValue::i32(0)});
  div.expect_same("work", {TypedValue::i32(INT32_MIN), TypedValue::i32(-1)});
  div.expect_same("work", {TypedValue::i32(9), TypedValue::i32(3)});

  DiffPair oob = make_pair_wcc(
      "export fn work(a: i32) -> i32 { return load32(a); }");
  oob.expect_same("work", {TypedValue::i32(0)});
  oob.expect_same("work", {TypedValue::i32(INT32_MAX)});
  oob.expect_same("work", {TypedValue::i32(-4)});

  // Unbounded recursion: both dispatchers must exhaust the frame budget at
  // the same depth (same instrs_retired) with the same trap.
  ModuleBuilder rec;
  auto& f = rec.add_func(FuncType{{}, {ValType::kI32}}, "work");
  f.call(0).end();
  DiffPair deep = make_pair(rec);
  deep.expect_same("work", {});

  ModuleBuilder unr;
  auto& g = unr.add_func(FuncType{{}, {}}, "work");
  g.op(Op::kUnreachable).end();
  DiffPair boom = make_pair(unr);
  boom.expect_same("work", {});
}

TEST(InterpDifferential, IndirectCallTrapsMatch) {
  ModuleBuilder mb;
  FuncType unop{{ValType::kI32}, {ValType::kI32}};
  FuncType nullary{{}, {ValType::kI32}};
  auto& inc = mb.add_func(unop);
  inc.local_get(0).i32_const(1).op(Op::kI32Add).end();
  auto& zero = mb.add_func(nullary);
  zero.i32_const(0).end();
  mb.add_table(4, 4);
  mb.add_elem(0, {inc.index()});
  mb.add_elem(2, {zero.index()});
  uint32_t t_unop = mb.add_type(unop);
  auto& work = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  work.i32_const(41).local_get(0).call_indirect(t_unop).end();

  DiffPair pair = make_pair(mb);
  pair.expect_same("work", {TypedValue::i32(0)});   // ok
  pair.expect_same("work", {TypedValue::i32(1)});   // uninitialized element
  pair.expect_same("work", {TypedValue::i32(2)});   // signature mismatch
  pair.expect_same("work", {TypedValue::i32(9)});   // out of bounds
}

TEST(InterpDifferential, FuelBoundariesMatch) {
  DiffPair pair = make_pair_wcc(R"(
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) {
        if (i % 3 == 0) { acc = acc + i * 7; } else { acc = acc - i / 3; }
        i = i + 1;
      }
      return acc;
    }
  )");
  const std::vector<TypedValue> args = {TypedValue::i32(200)};

  // Discover the exact cost unmetered, then sweep the boundary: every budget
  // must produce the identical success/trap outcome AND identical fuel_used
  // on both dispatchers (bit-identical metering).
  Outcome probe = run_one(*pair.oracle, "work", args, {});
  ASSERT_TRUE(probe.ok);
  const uint64_t exact = probe.instrs;

  std::vector<uint64_t> budgets = {1, 2, 3, 5, exact / 2, exact - 1, exact,
                                   exact + 1, exact * 10};
  for (uint64_t b : budgets) {
    CallOptions opts;
    opts.fuel = b;
    pair.expect_same("work", args, opts);
  }

  // And the exact budget must succeed while exact-1 must trap — on both.
  CallOptions at;
  at.fuel = exact;
  EXPECT_TRUE(run_one(*pair.threaded, "work", args, at).ok);
  CallOptions under;
  under.fuel = exact - 1;
  Outcome starved = run_one(*pair.threaded, "work", args, under);
  EXPECT_FALSE(starved.ok);
  EXPECT_EQ(starved.error_code, static_cast<int>(Error::Code::kFuelExhausted));
}

/// Stubs every function import with a zero-returning host of the right
/// signature so mutants (and pristine plugins) exercise the interpreter,
/// not the plugin ABI.
wasm::Linker stub_linker(const wasm::Module& m) {
  wasm::Linker linker;
  for (const auto& imp : m.imports) {
    if (imp.kind != wasm::ImportKind::kFunc) continue;
    const FuncType& ft = m.types[imp.type_index];
    const bool has_result = !ft.results.empty();
    linker.register_func(
        imp.module, imp.name,
        wasm::HostFunc{ft, [has_result](wasm::HostContext&,
                                        std::span<const wasm::Value>)
                               -> Result<std::optional<wasm::Value>> {
          if (has_result) return std::optional<wasm::Value>(wasm::Value{});
          return std::optional<wasm::Value>{};
        }});
  }
  return linker;
}

TEST(InterpDifferential, VerifierAcceptsTierStreams) {
  // With the stream firewall installed, every lowering (translate) and every
  // tier-2 rewrite (tier-up swap) self-checks against the verifier; this
  // test then re-verifies each instance's active streams explicitly after
  // forcing the tier boundary, so both tiers of every scheduler are covered.
  analysis::install_stream_firewall();
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok()) << kind;
    auto decoded = wasm::decode_module(*bytes);
    ASSERT_TRUE(decoded.ok()) << kind;
    ASSERT_TRUE(wasm::validate_module(*decoded).ok()) << kind;
    ASSERT_TRUE(wasm::translate_module(*decoded).ok()) << kind;
    EXPECT_TRUE(analysis::verify_module(*decoded, *decoded->translated).ok())
        << kind;

    auto pair = make_pair_from_bytes(*bytes, stub_linker(*decoded));
    ASSERT_TRUE(pair.ok()) << (pair.ok() ? "" : pair.error().message);
    CallOptions opts;
    opts.fuel = 200'000;
    // Two calls: spec2 crosses the tier boundary on the second one, so the
    // firewall sees the rewrite happen on both instances.
    for (int i = 0; i < 2; ++i) {
      run_one(*pair->spec1, "schedule", {}, opts);
      run_one(*pair->spec2, "schedule", {}, opts);
    }
    EXPECT_GT(pair->spec1->tier_up_events(), 0u) << kind;
    EXPECT_GT(pair->spec2->tier_up_events(), 0u) << kind;

    for (wasm::Instance* inst : {pair->spec1.get(), pair->spec2.get()}) {
      const size_t n = inst->translation()->funcs.size();
      for (uint32_t di = 0; di < n; ++di) {
        Status st = analysis::verify_func(inst->module(),
                                          *inst->active_stream(di));
        EXPECT_TRUE(st.ok())
            << kind << " func " << di << ": " << st.error().message;
      }
    }
  }
}

TEST(InterpDifferential, CorruptedStreamsAreRejected) {
  // Deterministic corruptions of uop immediates, each guaranteed to break a
  // stream invariant (arbitrary bit flips can land on another legal stream,
  // e.g. in kConst payload bits — those are the mutants above). Applied to
  // the tier-1 stream of every scheduler function and to every tier-2
  // rewrite after forcing tier-up.
  using wasm::TranslatedFunc;
  using wasm::UOp;

  auto zero_charge = [](TranslatedFunc& tf) {
    // Op 0 is always charge-leading (else entry-charge would fire), so
    // zeroing its charge field trips zero-charge.
    switch (tf.ops[0].op) {
      case UOp::kSeg:
        tf.ops[0].b = 0;
        return true;
      case UOp::kSegLocalGet:
      case UOp::kSegLocalMove:
      case UOp::kSegLCAddSetI32:
        tf.ops[0].imm.pair.y = 0;
        return true;
      default:
        return false;
    }
  };
  auto is_branch = [](UOp op) {
    return op == UOp::kJump || op == UOp::kJumpZ || op == UOp::kJumpNZ ||
           op == UOp::kBr || op == UOp::kBrIf;
  };
  auto first_branch = [&](const TranslatedFunc& tf) -> int64_t {
    for (size_t i = 0; i < tf.ops.size(); ++i) {
      if (is_branch(tf.ops[i].op)) return static_cast<int64_t>(i);
    }
    return -1;
  };
  auto first_local_op = [](const TranslatedFunc& tf) -> int64_t {
    for (size_t i = 0; i < tf.ops.size(); ++i) {
      const UOp op = tf.ops[i].op;
      if (op == UOp::kLocalGet || op == UOp::kLocalSet ||
          op == UOp::kLocalTee || op == UOp::kSegLocalGet) {
        return static_cast<int64_t>(i);
      }
    }
    return -1;
  };

  auto expect_rejected = [](const wasm::Module& m, const TranslatedFunc& tf,
                            const char* what) {
    Status st = analysis::verify_func(m, tf);
    EXPECT_FALSE(st.ok()) << what << ": corrupted stream passed the verifier";
  };

  int corruptions = 0;
  auto corrupt_all_ways = [&](const wasm::Module& m, const TranslatedFunc& base,
                              const std::string& tag) {
    {  // bad-opcode: op value outside the dispatch table
      TranslatedFunc tf = base;
      tf.ops[0].op = static_cast<UOp>(wasm::kNumUOps);
      expect_rejected(m, tf, (tag + "/bad-opcode").c_str());
      ++corruptions;
    }
    {  // entry-charge: first op no longer charges its segment
      TranslatedFunc tf = base;
      tf.ops[0] = wasm::UInstr{};
      tf.ops[0].op = UOp::kDrop;
      expect_rejected(m, tf, (tag + "/entry-charge").c_str());
      ++corruptions;
    }
    {  // fall-off-end: last op falls through past the stream
      TranslatedFunc tf = base;
      wasm::UInstr seg{};
      seg.op = UOp::kSeg;
      seg.b = 1;
      tf.ops.back() = seg;
      expect_rejected(m, tf, (tag + "/fall-off-end").c_str());
      ++corruptions;
    }
    {  // zero-charge: op 0 charges nothing
      TranslatedFunc tf = base;
      if (zero_charge(tf)) {
        expect_rejected(m, tf, (tag + "/zero-charge").c_str());
        ++corruptions;
      }
    }
    if (int64_t i = first_branch(base); i >= 0) {
      {  // target-range: branch off the end of the stream
        TranslatedFunc tf = base;
        tf.ops[static_cast<size_t>(i)].b =
            static_cast<uint32_t>(tf.ops.size()) + 1000;
        expect_rejected(m, tf, (tag + "/target-range").c_str());
        ++corruptions;
      }
      {  // double-charge: taken edge lands on the charge-leading op 0
        TranslatedFunc tf = base;
        tf.ops[static_cast<size_t>(i)].b = 0;
        expect_rejected(m, tf, (tag + "/double-charge").c_str());
        ++corruptions;
      }
    }
    if (int64_t i = first_local_op(base); i >= 0) {
      // index-range: local slot far outside the frame
      TranslatedFunc tf = base;
      tf.ops[static_cast<size_t>(i)].b = 0xFFFE;
      expect_rejected(m, tf, (tag + "/index-range").c_str());
      ++corruptions;
    }
  };

  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok()) << kind;
    auto decoded = wasm::decode_module(*bytes);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(wasm::validate_module(*decoded).ok());
    ASSERT_TRUE(wasm::translate_module(*decoded).ok());

    // Tier-1 streams.
    for (size_t fi = 0; fi < decoded->translated->funcs.size(); ++fi) {
      corrupt_all_ways(*decoded, decoded->translated->funcs[fi],
                       std::string(kind) + "/t1/f" + std::to_string(fi));
    }

    // Tier-2 streams: force tier-up, then corrupt each active stream.
    auto pair = make_pair_from_bytes(*bytes, stub_linker(*decoded));
    ASSERT_TRUE(pair.ok());
    CallOptions opts;
    opts.fuel = 200'000;
    run_one(*pair->spec1, "schedule", {}, opts);
    ASSERT_GT(pair->spec1->tier_up_events(), 0u) << kind;
    const size_t n = pair->spec1->translation()->funcs.size();
    for (uint32_t di = 0; di < n; ++di) {
      corrupt_all_ways(pair->spec1->module(), *pair->spec1->active_stream(di),
                       std::string(kind) + "/t2/f" + std::to_string(di));
    }
  }
  // The battery must have actually fired across the corpus.
  EXPECT_GE(corruptions, 50);
}

TEST(InterpDifferential, ValidatedMutantsMatch) {
  // Random mutants (1-3 byte edits) of every real scheduler plugin that
  // still pass validation: run each through both dispatchers under a
  // stubbed host ABI and a tight fuel budget, and require identical
  // observable behavior — the differential analogue of
  // Fuzz.ValidatedMutantsAreSafeToRun, widened across the plugin corpus
  // and deeper corruption. The stream firewall stays installed so tier-up
  // rewrites are also verified in-line.
  analysis::install_stream_firewall();
  int kind_index = 0;
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto seed_module = sched::plugins::scheduler(kind);
    ASSERT_TRUE(seed_module.ok()) << kind;

    Xoshiro256 rng(0xD1FF + static_cast<uint64_t>(kind_index++));
    int executed = 0;
    for (int round = 0; round < 4000 && executed < 25; ++round) {
      std::vector<uint8_t> mutated = *seed_module;
      const uint64_t edits = 1 + rng.below(3);
      for (uint64_t e = 0; e < edits; ++e) {
        mutated[rng.below(mutated.size())] = static_cast<uint8_t>(rng.next());
      }

      auto decoded = wasm::decode_module(mutated);
      if (!decoded.ok()) continue;
      if (!wasm::validate_module(*decoded).ok()) continue;

      // Every validated mutant's lowering must pass the stream verifier.
      // Translation may legally reject a mutant on representation limits,
      // but never because its own output failed the firewall.
      Status tr = wasm::translate_module(*decoded);
      if (!tr.ok()) {
        ASSERT_EQ(tr.error().message.find("stream firewall"), std::string::npos)
            << tr.error().message;
        continue;
      }
      Status v = analysis::verify_module(*decoded, *decoded->translated);
      ASSERT_TRUE(v.ok()) << kind << " mutant round " << round << ": "
                          << v.error().message;

      auto pair = make_pair_from_bytes(mutated, stub_linker(*decoded));
      if (!pair.ok()) continue;  // e.g. start function trapped — fine
      ++executed;
      CallOptions opts;
      opts.fuel = 200'000;
      pair->expect_same("schedule", {}, opts);

      // The tier-2 rewrites of every mutant must pass the verifier too
      // (spec1 tiered up during expect_same).
      const size_t nfuncs = pair->spec1->translation()->funcs.size();
      for (uint32_t di = 0; di < nfuncs; ++di) {
        Status t2 = analysis::verify_func(pair->spec1->module(),
                                          *pair->spec1->active_stream(di));
        ASSERT_TRUE(t2.ok()) << kind << " mutant round " << round << " func "
                             << di << ": " << t2.error().message;
      }
    }
    EXPECT_GT(executed, 0) << kind;
  }
}

}  // namespace
}  // namespace waran
