// Tests for waran::obs — trace ring, metrics registry, anomaly journal,
// and the exporters the waran_obs tool and CI smoke check rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "codec/json.h"
#include "common/log.h"
#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace waran::obs {
namespace {

// The ring, registry and journal are process-wide singletons; each test
// starts from a clean sheet.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRing::instance().disable();
    TraceRing::instance().clear();
    MetricsRegistry::global().reset_values();
    AnomalyJournal::global().clear();
    set_current_slot(0);
  }
  void TearDown() override {
    route_logs_to_trace(false);
    TraceRing::instance().disable();
    clear_log_level_overrides();
    set_log_level(LogLevel::kWarn);
  }
};

TEST_F(ObsTest, DisabledRingRecordsNothing) {
  TraceRing& ring = TraceRing::instance();
  ASSERT_FALSE(ring.enabled());
  uint64_t before = ring.writes();
  ring.record(TraceCat::kMac, "noop", 1, 2, 3);
  ring.instant(TraceCat::kMac, "noop");
  { ObsSpan span(TraceCat::kWasm, "noop"); }
  EXPECT_EQ(ring.writes(), before);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST_F(ObsTest, WrapAroundKeepsNewestEvents) {
  TraceRing& ring = TraceRing::instance();
  ring.enable(8);  // already a power of two
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint32_t i = 0; i < 20; ++i) {
    ring.record(TraceCat::kOther, "e", /*t_ns=*/i, /*dur_ns=*/1, /*arg=*/i);
  }
  EXPECT_EQ(ring.writes(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first snapshot of the newest 8 events: args 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12u + i);
  }
}

TEST_F(ObsTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing& ring = TraceRing::instance();
  ring.enable(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST_F(ObsTest, EventsCarryCurrentSlot) {
  TraceRing& ring = TraceRing::instance();
  ring.enable(16);
  set_current_slot(42);
  ring.instant(TraceCat::kMac, "tick");
  set_current_slot(43);
  ring.instant(TraceCat::kMac, "tick");
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].slot, 42u);
  EXPECT_EQ(events[1].slot, 43u);
}

TEST_F(ObsTest, LongNamesAreTruncatedNotOverflowed) {
  TraceRing& ring = TraceRing::instance();
  ring.enable(4);
  std::string long_name(100, 'x');
  ring.instant(TraceCat::kOther, long_name);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(25, 'x'));
}

TEST_F(ObsTest, ChromeTraceExportParsesAsJson) {
  TraceRing& ring = TraceRing::instance();
  ring.enable(16);
  set_current_slot(7);
  ring.record(TraceCat::kMac, "slot", 1000, 500, 7);
  ring.record(TraceCat::kWasm, "run \"quoted\"", 1100, 200, 0);
  ring.instant(TraceCat::kAnomaly, "trap");

  auto parsed = codec::Json::parse(ring.export_chrome_trace());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const codec::Json& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 3u);
  const codec::Json& first = events.as_array()[0];
  EXPECT_EQ(first["name"].as_string(), "slot");
  EXPECT_EQ(first["ph"].as_string(), "X");
  EXPECT_EQ(first["args"]["slot"].as_number(), 7.0);
  EXPECT_EQ(events.as_array()[2]["ph"].as_string(), "i");
}

TEST_F(ObsTest, HistogramPowerOfTwoBoundaries) {
  Histogram h;
  h.add(0);  // bucket 0
  h.add(1);  // bucket 1: [1,2)
  h.add(2);  // bucket 2: [2,4)
  h.add(3);  // bucket 2
  h.add(4);  // bucket 3: [4,8)
  h.add(255);   // bucket 8: [128,256)
  h.add(256);   // bucket 9: [256,512)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);

  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 2u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1024u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), UINT64_MAX);
}

TEST_F(ObsTest, HistogramQuantileEstimates) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 99; ++i) h.add(3);   // bucket 2, upper bound 4
  h.add(1000);                              // bucket 10, upper bound 1024
  // p50 falls in the low bucket, p995 in the outlier bucket.
  EXPECT_LE(h.quantile(0.5), 4u);
  EXPECT_GT(h.quantile(0.995), 4u);
}

TEST_F(ObsTest, CounterConcurrencySmoke) {
  Counter& c = MetricsRegistry::global().counter("waran_test_concurrency_total");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST_F(ObsTest, RegistryReturnsStableInstruments) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("waran_test_stable_total", {{"slot", "rr"}});
  Counter& b = reg.counter("waran_test_stable_total", {{"slot", "rr"}});
  Counter& other = reg.counter("waran_test_stable_total", {{"slot", "pf"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST_F(ObsTest, PrometheusExportFormat) {
  auto& reg = MetricsRegistry::global();
  reg.counter("waran_test_prom_total", {{"domain", "mac"}, {"slot", "rr"}}).add(3);
  reg.gauge("waran_test_prom_gauge").set(-5);
  reg.histogram("waran_test_prom_ns").add(7);

  std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE waran_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("waran_test_prom_total{domain=\"mac\",slot=\"rr\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE waran_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("waran_test_prom_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE waran_test_prom_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("waran_test_prom_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("waran_test_prom_ns_sum 7"), std::string::npos);
  EXPECT_NE(text.find("waran_test_prom_ns_count 1"), std::string::npos);
}

TEST_F(ObsTest, JsonExportRoundTrips) {
  auto& reg = MetricsRegistry::global();
  reg.counter("waran_test_json_total", {{"k", "v\"esc"}}).add(11);
  reg.histogram("waran_test_json_ns").add(100);

  auto parsed = codec::Json::parse(reg.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const codec::Json& counters = (*parsed)["counters"];
  ASSERT_TRUE(counters.is_object());
  EXPECT_EQ(counters["waran_test_json_total{k=\"v\\\"esc\"}"].as_number(), 11.0);
  const codec::Json& hist = (*parsed)["histograms"]["waran_test_json_ns"];
  ASSERT_TRUE(hist.is_object());
  EXPECT_EQ(hist["count"].as_number(), 1.0);
  EXPECT_EQ(hist["sum"].as_number(), 100.0);
}

TEST_F(ObsTest, AnomalyJournalFiltersByDomain) {
  auto& journal = AnomalyJournal::global();
  set_current_slot(9);
  journal.record(AnomalyKind::kTrap, "ric", "xapp:sla", "oob");
  journal.record(AnomalyKind::kFrameRejected, "gnb0", "comm", "bad magic");
  journal.record(AnomalyKind::kFuelExhausted, "ric", "xapp:sla", "fuel");

  auto all = journal.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].slot, 9u);
  EXPECT_EQ(all[0].kind, AnomalyKind::kTrap);

  auto ric_only = journal.snapshot("ric");
  ASSERT_EQ(ric_only.size(), 2u);
  EXPECT_EQ(ric_only[1].kind, AnomalyKind::kFuelExhausted);
  EXPECT_TRUE(journal.snapshot("nonexistent").empty());
  EXPECT_EQ(journal.total(), 3u);
}

TEST_F(ObsTest, AnomalyJournalEvictsAtCapacityButTotalIsMonotone) {
  auto& journal = AnomalyJournal::global();
  journal.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    journal.record(AnomalyKind::kOther, "mac", "s", std::to_string(i));
  }
  auto records = journal.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().detail, "6");
  EXPECT_EQ(records.back().detail, "9");
  EXPECT_EQ(journal.total(), 10u);
  // Sequence numbers survive eviction.
  EXPECT_EQ(records.back().seq, 9u);
  journal.set_capacity(1024);
}

TEST_F(ObsTest, AnomalyRecordFeedsMetricsAndTrace) {
  TraceRing::instance().enable(16);
  AnomalyJournal::global().record(AnomalyKind::kTrap, "ric", "xapp:t", "boom");
  auto events = TraceRing::instance().snapshot();
  bool saw_anomaly = false;
  for (const TraceEvent& e : events) {
    if (e.cat == static_cast<uint8_t>(TraceCat::kAnomaly)) saw_anomaly = true;
  }
  EXPECT_TRUE(saw_anomaly);
  std::string prom = MetricsRegistry::global().to_prometheus();
  EXPECT_NE(prom.find("waran_anomaly_total{domain=\"ric\",kind=\"trap\"} 1"),
            std::string::npos)
      << prom;
}

TEST_F(ObsTest, LogLinesRouteIntoTraceRing) {
  TraceRing::instance().enable(16);
  route_logs_to_trace(true);
  set_log_level(LogLevel::kWarn);
  WARAN_LOG(kError, "obs_test", "routed line");
  route_logs_to_trace(false);
  auto events = TraceRing::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cat, static_cast<uint8_t>(TraceCat::kLog));
  EXPECT_EQ(events[0].phase, 'i');
}

}  // namespace
}  // namespace waran::obs
