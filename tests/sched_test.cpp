// Scheduler tests: native baseline semantics, Wasm-plugin equivalence with
// the native implementations on identical inputs (the core correctness
// claim of the WA-RAN port), inter-slice allocation properties, and the
// MAC's fault-fallback path.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "ran/phy_tables.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

namespace waran::sched {
namespace {

using codec::SchedRequest;
using codec::SchedResponse;
using codec::UeInfo;

UeInfo make_ue(uint32_t rnti, uint32_t mcs, uint32_t buffer_bytes, double avg_bps) {
  UeInfo ue;
  ue.rnti = rnti;
  ue.mcs = mcs;
  ue.cqi = ran::cqi_from_mcs(mcs);
  ue.buffer_bytes = buffer_bytes;
  ue.tbs_per_prb = ran::transport_block_bits(mcs, 1);
  ue.avg_tput_bps = avg_bps;
  ue.achievable_bps = ran::transport_block_bits(mcs, 52) * 1000.0;
  return ue;
}

uint32_t total_prbs(const SchedResponse& resp) {
  uint32_t sum = 0;
  for (const auto& a : resp.allocs) sum += a.prbs;
  return sum;
}

// --- Native baselines. ---

TEST(RrScheduler, EqualSharesWithRotatingRemainder) {
  RrScheduler rr;
  SchedRequest req;
  req.slot = 0;
  req.prb_quota = 10;
  req.ues = {make_ue(1, 20, 100000, 0), make_ue(2, 20, 100000, 0),
             make_ue(3, 20, 100000, 0)};
  auto resp = rr.schedule(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->allocs.size(), 3u);
  EXPECT_EQ(total_prbs(*resp), 10u);
  // 10 / 3 = 3 each, +1 to the first 1 starting from slot % 3.
  uint32_t maxp = 0, minp = UINT32_MAX;
  for (const auto& a : resp->allocs) {
    maxp = std::max(maxp, a.prbs);
    minp = std::min(minp, a.prbs);
  }
  EXPECT_EQ(maxp, 4u);
  EXPECT_EQ(minp, 3u);
}

TEST(RrScheduler, RemainderRotatesAcrossSlots) {
  RrScheduler rr;
  SchedRequest req;
  req.prb_quota = 4;
  req.ues = {make_ue(1, 20, 100000, 0), make_ue(2, 20, 100000, 0),
             make_ue(3, 20, 100000, 0)};
  // Track who gets the extra PRB over 3 consecutive slots: all must get one.
  std::set<uint32_t> lucky;
  for (uint32_t slot = 0; slot < 3; ++slot) {
    req.slot = slot;
    auto resp = rr.schedule(req);
    ASSERT_TRUE(resp.ok());
    for (const auto& a : resp->allocs) {
      if (a.prbs == 2) lucky.insert(a.rnti);
    }
  }
  EXPECT_EQ(lucky.size(), 3u);
}

TEST(RrScheduler, EmptyInputsYieldEmptyResponse) {
  RrScheduler rr;
  SchedRequest req;
  req.prb_quota = 0;
  req.ues = {make_ue(1, 20, 1000, 0)};
  EXPECT_TRUE(rr.schedule(req)->allocs.empty());
  req.prb_quota = 10;
  req.ues.clear();
  EXPECT_TRUE(rr.schedule(req)->allocs.empty());
}

TEST(MtScheduler, BestChannelFirstAndStarvation) {
  MtScheduler mt;
  SchedRequest req;
  req.prb_quota = 10;
  req.ues = {make_ue(1, 10, 1 << 20, 0), make_ue(2, 28, 1 << 20, 0),
             make_ue(3, 20, 1 << 20, 0)};
  auto resp = mt.schedule(req);
  ASSERT_TRUE(resp.ok());
  // Full buffers need far more than 10 PRBs: the whole quota goes to the
  // MCS-28 UE; the others starve.
  ASSERT_EQ(resp->allocs.size(), 1u);
  EXPECT_EQ(resp->allocs[0].rnti, 2u);
  EXPECT_EQ(resp->allocs[0].prbs, 10u);
}

TEST(MtScheduler, DrainsSmallBuffersThenMovesOn) {
  MtScheduler mt;
  SchedRequest req;
  req.prb_quota = 20;
  // MCS 28 UE only has a tiny buffer; rest of quota must flow to MCS 20.
  req.ues = {make_ue(1, 20, 1 << 20, 0), make_ue(2, 28, 100, 0)};
  auto resp = mt.schedule(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->allocs.size(), 2u);
  EXPECT_EQ(resp->allocs[0].rnti, 2u);  // best channel served first
  uint32_t need = (100 * 8 + make_ue(2, 28, 0, 0).tbs_per_prb - 1) /
                  make_ue(2, 28, 0, 0).tbs_per_prb;
  EXPECT_EQ(resp->allocs[0].prbs, need);
  EXPECT_EQ(resp->allocs[1].rnti, 1u);
  EXPECT_EQ(resp->allocs[1].prbs, 20u - need);
}

TEST(PfScheduler, PrioritizesLowAverageThroughput) {
  PfScheduler pf;
  SchedRequest req;
  req.prb_quota = 10;
  // Same channel, very different history: the starved UE wins.
  req.ues = {make_ue(1, 20, 1 << 20, 50e6), make_ue(2, 20, 1 << 20, 1e3)};
  auto resp = pf.schedule(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_GE(resp->allocs.size(), 1u);
  EXPECT_EQ(resp->allocs[0].rnti, 2u);
  EXPECT_EQ(resp->allocs[0].prbs, 10u);
}

TEST(PfScheduler, SkipsEmptyBuffers) {
  PfScheduler pf;
  SchedRequest req;
  req.prb_quota = 10;
  req.ues = {make_ue(1, 20, 0, 1e3), make_ue(2, 10, 5000, 50e6)};
  auto resp = pf.schedule(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->allocs.size(), 1u);
  EXPECT_EQ(resp->allocs[0].rnti, 2u);
}

// --- Wasm plugin equivalence with native baselines. ---

class WasmNativeEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(WasmNativeEquivalence, IdenticalDecisionsAcrossInputs) {
  const std::string kind = GetParam();
  auto native = make_native_scheduler(kind);
  ASSERT_NE(native, nullptr);

  plugin::PluginManager mgr;
  auto bytes = plugins::scheduler(kind);
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  ASSERT_TRUE(mgr.install(kind, *bytes).ok());
  WasmIntraScheduler wasm_sched(mgr, kind);

  // Sweep structured scenarios: UE counts, channel spreads, buffer mixes.
  Xoshiro256 rng(2024);
  for (int scenario = 0; scenario < 60; ++scenario) {
    SchedRequest req;
    req.slot = static_cast<uint32_t>(scenario * 7);
    req.prb_quota = static_cast<uint32_t>(rng.range(1, 52));
    uint32_t n = static_cast<uint32_t>(rng.range(1, 24));
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t mcs = static_cast<uint32_t>(rng.range(0, 28));
      uint32_t buffer = rng.uniform() < 0.2
                            ? 0
                            : static_cast<uint32_t>(rng.range(1, 1 << 20));
      double avg = rng.uniform() * 4e7;
      req.ues.push_back(make_ue(0x4601 + i, mcs, buffer, avg));
    }
    auto native_resp = native->schedule(req);
    auto wasm_resp = wasm_sched.schedule(req);
    ASSERT_TRUE(native_resp.ok());
    ASSERT_TRUE(wasm_resp.ok()) << wasm_resp.error().message;
    ASSERT_EQ(native_resp->allocs.size(), wasm_resp->allocs.size())
        << "scenario " << scenario << " kind " << kind;
    for (size_t i = 0; i < native_resp->allocs.size(); ++i) {
      EXPECT_EQ(native_resp->allocs[i].rnti, wasm_resp->allocs[i].rnti)
          << "scenario " << scenario << " alloc " << i;
      EXPECT_EQ(native_resp->allocs[i].prbs, wasm_resp->allocs[i].prbs)
          << "scenario " << scenario << " alloc " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, WasmNativeEquivalence,
                         ::testing::Values("rr", "pf", "mt", "drr"));

// Plugin responses never exceed the quota (property over random inputs).
class WasmQuotaProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(WasmQuotaProperty, NeverOverAllocates) {
  plugin::PluginManager mgr;
  auto bytes = plugins::scheduler(GetParam());
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(mgr.install("s", *bytes).ok());
  WasmIntraScheduler sched(mgr, "s");
  Xoshiro256 rng(7);
  for (int i = 0; i < 40; ++i) {
    SchedRequest req;
    req.slot = static_cast<uint32_t>(i);
    req.prb_quota = static_cast<uint32_t>(rng.range(0, 52));
    uint32_t n = static_cast<uint32_t>(rng.range(0, 32));
    for (uint32_t u = 0; u < n; ++u) {
      req.ues.push_back(make_ue(0x4601 + u, static_cast<uint32_t>(rng.range(0, 28)),
                                static_cast<uint32_t>(rng.range(0, 100000)),
                                rng.uniform() * 1e7));
    }
    auto resp = sched.schedule(req);
    ASSERT_TRUE(resp.ok()) << resp.error().message;
    EXPECT_LE(total_prbs(*resp), req.prb_quota);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, WasmQuotaProperty,
                         ::testing::Values("rr", "pf", "mt", "drr"));

// --- Inter-slice schedulers. ---

ran::SliceConfig slice_cfg(uint32_t id, double target_bps, double weight) {
  ran::SliceConfig cfg;
  cfg.slice_id = id;
  cfg.name = "s" + std::to_string(id);
  cfg.target_rate_bps = target_bps;
  cfg.weight = weight;
  return cfg;
}

TEST(WeightedShare, SplitsByWeightAmongActive) {
  WeightedShareInterScheduler ws;
  auto c1 = slice_cfg(1, 0, 1.0);
  auto c2 = slice_cfg(2, 0, 3.0);
  std::vector<ran::SliceDemand> demands(2);
  demands[0] = {&c1, 10000, 0, 2, 700.0};
  demands[1] = {&c2, 10000, 0, 2, 700.0};
  auto q = ws.allocate(52, demands);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0] + q[1], 52u);
  EXPECT_EQ(q[0], 13u);
  EXPECT_EQ(q[1], 39u);
}

TEST(WeightedShare, IdleSliceGetsNothing) {
  WeightedShareInterScheduler ws;
  auto c1 = slice_cfg(1, 0, 1.0);
  auto c2 = slice_cfg(2, 0, 1.0);
  std::vector<ran::SliceDemand> demands(2);
  demands[0] = {&c1, 10000, 0, 1, 700.0};
  demands[1] = {&c2, 0, 0, 0, 0.0};
  auto q = ws.allocate(52, demands);
  EXPECT_EQ(q[0], 52u);
  EXPECT_EQ(q[1], 0u);
}

TEST(TargetRate, ProvisionsJustEnoughOnAverage) {
  TargetRateInterScheduler tr(1000.0, /*feedback_gain=*/0.0);
  auto c1 = slice_cfg(1, 3e6, 1.0);    // 3 Mb/s
  auto c2 = slice_cfg(2, 12e6, 1.0);   // 12 Mb/s
  std::vector<ran::SliceDemand> demands(2);
  double bits_per_prb = ran::transport_block_bits(28, 1);  // ~877
  demands[0] = {&c1, 1 << 20, 0, 1, bits_per_prb};
  demands[1] = {&c2, 1 << 20, 0, 1, bits_per_prb};
  // Fractional provisioning dithers; the mean over many slots must equal
  // target / (bits_per_prb * slots_per_s) and the sum stays far below 52.
  double sum0 = 0, sum1 = 0;
  const int kSlots = 1000;
  for (int s = 0; s < kSlots; ++s) {
    auto q = tr.allocate(52, demands);
    EXPECT_LE(q[0] + q[1], 52u);
    sum0 += q[0];
    sum1 += q[1];
  }
  EXPECT_NEAR(sum0 / kSlots, 3e6 / (bits_per_prb * 1000.0), 0.05);
  EXPECT_NEAR(sum1 / kSlots, 12e6 / (bits_per_prb * 1000.0), 0.05);
}

TEST(TargetRate, FeedbackTrimsOverdelivery) {
  TargetRateInterScheduler tr(1000.0, /*feedback_gain=*/0.01);
  auto c1 = slice_cfg(1, 3e6, 1.0);
  std::vector<ran::SliceDemand> demands(1);
  double bits_per_prb = ran::transport_block_bits(28, 1);
  // Report a measured rate 30% above target: the integral term must shrink
  // the average provisioned PRBs below the static estimate.
  demands[0] = {&c1, 1 << 20, 3.9e6, 1, bits_per_prb};
  double first_100 = 0, last_100 = 0;
  for (int s = 0; s < 1000; ++s) {
    auto q = tr.allocate(52, demands);
    if (s < 100) first_100 += q[0];
    if (s >= 900) last_100 += q[0];
  }
  EXPECT_LT(last_100, first_100);
}

TEST(TargetRate, OversubscriptionScalesProportionally) {
  TargetRateInterScheduler tr(1000.0, 0.0);
  auto c1 = slice_cfg(1, 30e6, 1.0);
  auto c2 = slice_cfg(2, 60e6, 1.0);
  std::vector<ran::SliceDemand> demands(2);
  double bits_per_prb = ran::transport_block_bits(28, 1);
  demands[0] = {&c1, 1 << 20, 0, 1, bits_per_prb};
  demands[1] = {&c2, 1 << 20, 0, 1, bits_per_prb};
  double sum0 = 0, sum1 = 0;
  for (int s = 0; s < 1000; ++s) {
    auto q = tr.allocate(52, demands);
    EXPECT_LE(q[0] + q[1], 52u);
    sum0 += q[0];
    sum1 += q[1];
  }
  EXPECT_NEAR(sum1 / sum0, 2.0, 0.1);
  EXPECT_NEAR((sum0 + sum1) / 1000.0, 52.0, 1.0);  // carrier fully used
}

TEST(Priority, HigherWeightDrainsFirst) {
  PriorityInterScheduler pr;
  auto c1 = slice_cfg(1, 0, 1.0);
  auto c2 = slice_cfg(2, 0, 9.0);
  std::vector<ran::SliceDemand> demands(2);
  double bits_per_prb = ran::transport_block_bits(20, 1);
  // Slice 2 needs everything and more.
  demands[0] = {&c1, 100000, 0, 1, bits_per_prb};
  demands[1] = {&c2, 1 << 20, 0, 1, bits_per_prb};
  auto q = pr.allocate(52, demands);
  EXPECT_EQ(q[1], 52u);
  EXPECT_EQ(q[0], 0u);
}

// --- MAC + scheduler integration, fault fallback. ---

TEST(MacIntegration, FaultySchedulerTriggersFallbackAndUesStillServed) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<WeightedShareInterScheduler>());

  plugin::PluginManager mgr;
  auto bad = plugins::faulty("oob");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(mgr.install("bad", *bad).ok());

  mac.add_slice(slice_cfg(1, 0, 1.0),
                std::make_unique<WasmIntraScheduler>(mgr, "bad"));
  uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(20),
                             ran::TrafficSource::full_buffer());
  ASSERT_TRUE(mac.run_slots(50).ok());

  const ran::SliceStats* stats = mac.slice_stats(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->scheduler_faults, 0u);
  // The fallback RR kept the UE flowing despite the broken plugin.
  EXPECT_GT(mac.ue(rnti)->delivered_bits(), 0u);
}

TEST(MacIntegration, BadAllocResponsesAreSanitized) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<WeightedShareInterScheduler>());

  plugin::PluginManager mgr;
  auto bad = plugins::faulty("badalloc");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(mgr.install("bad", *bad).ok());
  mac.add_slice(slice_cfg(1, 0, 1.0),
                std::make_unique<WasmIntraScheduler>(mgr, "bad"));
  mac.add_ue(1, ran::Channel::pinned_mcs(20), ran::TrafficSource::full_buffer());
  ASSERT_TRUE(mac.run_slots(20).ok());

  const ran::SliceStats* stats = mac.slice_stats(1);
  EXPECT_GT(stats->sanitized_allocs, 0u);   // foreign RNTI dropped, grant clamped
  EXPECT_EQ(stats->scheduler_faults, 0u);   // response was decodable
}

TEST(MacIntegration, ShortOutputIsADecodeFaultWithFallback) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<WeightedShareInterScheduler>());

  plugin::PluginManager mgr;
  auto bad = plugins::faulty("shortoutput");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(mgr.install("bad", *bad).ok());
  mac.add_slice(slice_cfg(1, 0, 1.0),
                std::make_unique<WasmIntraScheduler>(mgr, "bad"));
  uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(24),
                             ran::TrafficSource::full_buffer());
  ASSERT_TRUE(mac.run_slots(20).ok());
  EXPECT_GT(mac.slice_stats(1)->scheduler_faults, 0u);
  EXPECT_GT(mac.ue(rnti)->delivered_bits(), 0u);
}

TEST(MacIntegration, NativeRrSlicesShareEvenly) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<WeightedShareInterScheduler>());
  mac.add_slice(slice_cfg(1, 0, 1.0), std::make_unique<RrScheduler>());
  uint32_t a = mac.add_ue(1, ran::Channel::pinned_mcs(20),
                          ran::TrafficSource::full_buffer());
  uint32_t b = mac.add_ue(1, ran::Channel::pinned_mcs(20),
                          ran::TrafficSource::full_buffer());
  ASSERT_TRUE(mac.run_slots(2000).ok());
  double ra = mac.ue(a)->rate_bps(mac.now_s());
  double rb = mac.ue(b)->rate_bps(mac.now_s());
  EXPECT_GT(ra, 1e6);
  EXPECT_NEAR(ra / rb, 1.0, 0.05);
}

TEST(MacIntegration, CbrTrafficCapsDeliveredRate) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<WeightedShareInterScheduler>());
  mac.add_slice(slice_cfg(1, 0, 1.0), std::make_unique<RrScheduler>());
  uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(28),
                             ran::TrafficSource::cbr(5e6));
  ASSERT_TRUE(mac.run_slots(3000).ok());
  double rate = mac.ue(rnti)->rate_bps(mac.now_s());
  EXPECT_NEAR(rate, 5e6, 0.4e6);  // capped by offered load, not channel
}

}  // namespace
}  // namespace waran::sched

// Appended: Deficit Round Robin — the stateful fourth policy.
namespace waran::sched {
namespace {

TEST(DrrScheduler, LongRunSharesAreEqualDespiteChannelSkew) {
  // Unlike RR (equal PRBs per slot), DRR equalizes PRBs *over time* even
  // when UEs come and go; with both always active they match RR's shares.
  DrrScheduler drr;
  std::map<uint32_t, uint64_t> prbs;
  for (uint32_t slot = 0; slot < 1000; ++slot) {
    SchedRequest req;
    req.slot = slot;
    req.prb_quota = 13;  // odd quota: integer shares can't be equal per slot
    req.ues = {make_ue(1, 28, 1 << 20, 0), make_ue(2, 5, 1 << 20, 0),
               make_ue(3, 15, 1 << 20, 0)};
    auto resp = drr.schedule(req);
    ASSERT_TRUE(resp.ok());
    uint32_t total = 0;
    for (const auto& a : resp->allocs) {
      prbs[a.rnti] += a.prbs;
      total += a.prbs;
    }
    ASSERT_LE(total, req.prb_quota);
  }
  // 13 PRBs x 1000 slots / 3 UEs ~ 4333 each, within 2%.
  for (const auto& [rnti, got] : prbs) {
    EXPECT_NEAR(static_cast<double>(got), 13000.0 / 3.0, 90.0) << rnti;
  }
}

TEST(DrrScheduler, BurstCreditForNeedLimitedUe) {
  // A UE with a tiny buffer banks unused credit and later bursts above its
  // instantaneous fair share.
  DrrScheduler drr;
  auto small_then_big = [&](uint32_t slot, uint32_t buffer) {
    SchedRequest req;
    req.slot = slot;
    req.prb_quota = 10;
    req.ues = {make_ue(1, 20, buffer, 0), make_ue(2, 20, 1 << 20, 0)};
    auto resp = drr.schedule(req);
    EXPECT_TRUE(resp.ok());
    uint32_t got = 0;
    for (const auto& a : resp->allocs) {
      if (a.rnti == 1) got = a.prbs;
    }
    return got;
  };
  // 20 slots needing ~1 PRB: UE 1 banks ~4/slot of credit.
  for (uint32_t s = 0; s < 20; ++s) {
    EXPECT_LE(small_then_big(s, 100), 2u);
  }
  EXPECT_GT(drr.deficit(1), 10.0);  // banked burst credit
  // Now it has a full buffer: it bursts past the 5-PRB fair share.
  EXPECT_GT(small_then_big(20, 1 << 20), 5u);
}

TEST(DrrScheduler, CreditIsCappedAtFourQuotas) {
  DrrScheduler drr;
  for (uint32_t s = 0; s < 500; ++s) {
    SchedRequest req;
    req.slot = s;
    req.prb_quota = 10;
    // Only ever needs 1 PRB: credit would grow unboundedly without the cap.
    req.ues = {make_ue(1, 20, 50, 0)};
    ASSERT_TRUE(drr.schedule(req).ok());
  }
  EXPECT_LE(drr.deficit(1), 40.0 + 1e-9);
}

TEST(DrrScheduler, EvictionKeepsTableBounded) {
  DrrScheduler drr;
  // 200 distinct UEs over time, one per slot: table must not grow past 64
  // and scheduling must keep working.
  for (uint32_t s = 0; s < 200; ++s) {
    SchedRequest req;
    req.slot = s;
    req.prb_quota = 10;
    req.ues = {make_ue(0x5000 + s, 20, 1 << 20, 0)};
    auto resp = drr.schedule(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->allocs.size(), 1u);
    EXPECT_GT(resp->allocs[0].prbs, 0u);
  }
}

TEST(DrrScheduler, WasmStatePersistsAcrossCallsLikeNative) {
  // The burst-credit behaviour requires state in the plugin's linear memory
  // to survive between calls; run the banked-credit scenario through the
  // Wasm plugin and cross-check against native step by step.
  DrrScheduler native;
  plugin::PluginManager mgr;
  auto bytes = plugins::scheduler("drr");
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  ASSERT_TRUE(mgr.install("drr", *bytes).ok());
  WasmIntraScheduler wasm_drr(mgr, "drr");

  for (uint32_t s = 0; s < 30; ++s) {
    SchedRequest req;
    req.slot = s;
    req.prb_quota = 10;
    uint32_t small_buffer = s < 20 ? 100 : (1u << 20);
    req.ues = {make_ue(1, 20, small_buffer, 0), make_ue(2, 20, 1 << 20, 0)};
    auto a = native.schedule(req);
    auto b = wasm_drr.schedule(req);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->allocs.size(), b->allocs.size()) << "slot " << s;
    for (size_t i = 0; i < a->allocs.size(); ++i) {
      EXPECT_EQ(a->allocs[i].rnti, b->allocs[i].rnti) << "slot " << s;
      EXPECT_EQ(a->allocs[i].prbs, b->allocs[i].prbs) << "slot " << s;
    }
  }
}

}  // namespace
}  // namespace waran::sched
