// Tier-2 specialization boundary tests (wasm/specialize.h): the moments the
// profile-guided backend is most likely to get wrong are the transitions —
// the call that crosses the tier-up threshold mid-campaign, a re-entrant
// host call arriving while the caller's frame still runs the tier-1 stream,
// a wall-clock deadline armed across the boundary, and shared code caches
// serving several instances of one module. Each case is checked against a
// switch-dispatch oracle: tiering must be observationally invisible.
//
// This binary also owns the tier-2 warm-path allocation probe, so it
// includes heap_probe_guard.h (one TU per binary).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plugin/manager.h"
#include "rt/clock.h"
#include "rt/deployment.h"
#include "tests/heap_probe_guard.h"
#include "tests/wasm_test_util.h"
#include "wasm/specialize.h"
#include "wasm/wasm.h"

namespace waran {
namespace {

using wasm::Dispatch;
using wasm::InstanceOptions;
using wasm::TypedValue;
using wasm::UOp;
using wasm::ValType;
using wasmtest::branchy_module;
using wasmtest::call_i32;
using wasmtest::instantiate;
using wasmtest::reentrant_module;
using wasmtest::reenter_linker;

InstanceOptions specialized(uint32_t threshold) {
  InstanceOptions opt;
  opt.dispatch = Dispatch::kSpecialized;
  opt.tier_up_threshold = threshold;
  return opt;
}

InstanceOptions switch_oracle() {
  InstanceOptions opt;
  opt.dispatch = Dispatch::kSwitch;
  return opt;
}

/// mix(n) = ((n % 3) ^ (n * 5)) + n, shaped so the tier-1 stream keeps
/// pairs the baseline translator leaves unfused but the specializer
/// rewrites: the head Seg + LocalGet, Const + I32RemS, and the trailing
/// binop + LocalSet (branchy_module, by contrast, lowers to baseline fused
/// forms end to end and is deliberately un-shrinkable).
wasmtest::ModuleBuilder fusable_module() {
  wasmtest::ModuleBuilder mb;
  wasmtest::FunctionBuilder& f = mb.add_func(
      wasm::FuncType{{ValType::kI32}, {ValType::kI32}}, "mix");
  uint32_t t = f.add_local(ValType::kI32);
  f.local_get(0)
      .i32_const(3)
      .op(wasm::Op::kI32RemS)
      .local_get(0)
      .i32_const(5)
      .op(wasm::Op::kI32Mul)
      .op(wasm::Op::kI32Xor)
      .local_set(t)
      .local_get(t)
      .local_get(0)
      .op(wasm::Op::kI32Add)
      .end();
  return mb;
}

// --- The threshold crossing -------------------------------------------------

TEST(TierUp, ThresholdCrossingMidCampaignMatchesOracle) {
  // Calls 1..3 run tier-1, call 4 tiers up and already runs specialized,
  // calls 5..10 stay specialized. Every result must match the oracle and
  // exactly one tier-up must happen.
  auto oracle = instantiate(branchy_module(), {}, switch_oracle());
  auto tiered = instantiate(branchy_module(), {}, specialized(4));
  ASSERT_NE(oracle, nullptr);
  ASSERT_NE(tiered, nullptr);
  EXPECT_EQ(tiered->dispatch(), Dispatch::kSpecialized);

  const wasm::TranslatedFunc* tier1 = tiered->active_stream(0);
  for (int call = 1; call <= 10; ++call) {
    std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(37)}};
    EXPECT_EQ(call_i32(*tiered, "sum", arg), call_i32(*oracle, "sum", arg))
        << "call " << call;
    if (call < 4) {
      EXPECT_EQ(tiered->tier_up_events(), 0u) << "call " << call;
      EXPECT_EQ(tiered->active_stream(0), tier1) << "call " << call;
    } else {
      EXPECT_EQ(tiered->tier_up_events(), 1u) << "call " << call;
      EXPECT_NE(tiered->active_stream(0), tier1) << "call " << call;
    }
  }
  // The installed stream is a cache-owned rewrite; branchy_module lowers
  // to baseline fused forms end to end, so it never grows (shrink-proper is
  // asserted on fusable_module in Specialize.RewriteShrinks...).
  EXPECT_LE(tiered->active_stream(0)->ops.size(), tier1->ops.size());
}

TEST(TierUp, FuelAccountingIsBitIdenticalAcrossTheBoundary) {
  // The contract that everything else rests on: a specialized stream
  // charges the exact fuel of its tier-1 origin. Meter every call with
  // CallStats and compare to the oracle, through the tier-up and beyond.
  auto oracle = instantiate(branchy_module(), {}, switch_oracle());
  auto tiered = instantiate(branchy_module(), {}, specialized(3));
  ASSERT_NE(oracle, nullptr);
  ASSERT_NE(tiered, nullptr);
  for (int call = 1; call <= 6; ++call) {
    std::vector<TypedValue> arg = {
        {ValType::kI32, wasm::Value::from_i32(10 + call)}};
    wasm::CallOptions copt;
    copt.fuel = 100'000;
    wasm::CallStats so, st;
    auto ro = oracle->call("sum", arg, copt, &so);
    auto rt_ = tiered->call("sum", arg, copt, &st);
    ASSERT_TRUE(ro.ok());
    ASSERT_TRUE(rt_.ok());
    EXPECT_EQ((*ro)->value.as_i32(), (*rt_)->value.as_i32()) << "call " << call;
    EXPECT_EQ(so.fuel_used, st.fuel_used) << "call " << call;
    EXPECT_EQ(so.instrs_retired, st.instrs_retired) << "call " << call;
  }
}

// --- Re-entrancy across the boundary ----------------------------------------

TEST(TierUp, ReentrantHostCallDuringTierUp) {
  // outer(x) calls the host, which re-enters leaf(x). With threshold 1 both
  // functions tier up inside the very first outer call — outer on frame
  // push, leaf when the host re-enters — while outer's caller frame is
  // mid-flight. With threshold 2 the boundary lands between the calls.
  for (uint32_t threshold : {1u, 2u, 3u}) {
    auto oracle =
        instantiate(reentrant_module(), reenter_linker("leaf"), switch_oracle());
    auto tiered = instantiate(reentrant_module(), reenter_linker("leaf"),
                              specialized(threshold));
    ASSERT_NE(oracle, nullptr);
    ASSERT_NE(tiered, nullptr);
    for (int call = 1; call <= 4; ++call) {
      std::vector<TypedValue> arg = {
          {ValType::kI32, wasm::Value::from_i32(call * 11)}};
      EXPECT_EQ(call_i32(*tiered, "outer", arg), call_i32(*oracle, "outer", arg))
          << "threshold " << threshold << " call " << call;
    }
    EXPECT_EQ(tiered->tier_up_events(), 2u) << "threshold " << threshold;
  }
}

// --- Deadlines across the boundary ------------------------------------------

TEST(TierUp, FrozenVirtualClockDeadlineNeverFiresAcrossTierBoundary) {
  // A 1 ns wall-clock deadline would trap instantly on real time; under a
  // frozen virtual clock rt::now_ns() never advances, so it must never
  // fire — including on the call that crosses the tier boundary, whose
  // specialized stream re-arms the same poll cadence.
  rt::VirtualClockGuard guard(1'000);
  auto tiered = instantiate(branchy_module(), {}, specialized(2));
  ASSERT_NE(tiered, nullptr);
  for (int call = 1; call <= 4; ++call) {
    std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(99)}};
    wasm::CallOptions copt;
    copt.fuel = 0;  // unmetered: only the deadline could stop it
    copt.deadline = std::chrono::nanoseconds(1);
    auto r = tiered->call("sum", arg, copt);
    ASSERT_TRUE(r.ok()) << "call " << call << ": " << r.error().message;
    EXPECT_EQ((*r)->value.as_i32(), 2500);  // sum of odd numbers <= 99
  }
  EXPECT_EQ(tiered->tier_up_events(), 1u);
}

// --- Shared per-cell caches -------------------------------------------------

TEST(TierUp, SharedCodeCacheDedupesAcrossInstancesOfOneModule) {
  // Two instances of one module sharing a cell's cache (the deployment
  // shape: every slice scheduler instance of a plugin shares the cell's
  // PluginManager cache): the second tier-up must reuse the first rewrite.
  auto bytes = branchy_module().build();
  auto decoded = wasm::decode_module(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(wasm::validate_module(*decoded).ok());
  ASSERT_TRUE(wasm::translate_module(*decoded).ok());
  auto module = std::make_shared<const wasm::Module>(std::move(*decoded));

  wasm::CodeCache cache;
  InstanceOptions opt = specialized(1);
  opt.code_cache = &cache;
  auto a = wasm::Instance::instantiate(module, {}, opt);
  auto b = wasm::Instance::instantiate(module, {}, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(21)}};
  EXPECT_EQ(call_i32(**a, "sum", arg), call_i32(**b, "sum", arg));
  // Both instances tiered up, but the module's shared translation means one
  // rewrite serves both: a single cache entry, a single actual tier-up.
  EXPECT_EQ((*a)->tier_up_events(), 1u);
  EXPECT_EQ((*b)->tier_up_events(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.tier_ups(), 1u);
  EXPECT_EQ((*a)->active_stream(0), (*b)->active_stream(0));
}

TEST(TierUp, SharedCacheEntriesSurviveUntilLastInstanceReleases) {
  // The cache lifecycle contract: entries are keyed by tier-1 stream
  // address, so a key must stay alive (the entry retains the translation)
  // and entries must only drop once no instance of the module remains.
  auto bytes = branchy_module().build();
  auto decoded = wasm::decode_module(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(wasm::validate_module(*decoded).ok());
  ASSERT_TRUE(wasm::translate_module(*decoded).ok());
  auto module = std::make_shared<const wasm::Module>(std::move(*decoded));
  const wasm::TranslatedModule* tm = module->translated.get();

  wasm::CodeCache cache;
  InstanceOptions opt = specialized(1);
  opt.code_cache = &cache;
  auto a = wasm::Instance::instantiate(module, {}, opt);
  auto b = wasm::Instance::instantiate(module, {}, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(21)}};
  const int32_t expected = call_i32(**a, "sum", arg);
  ASSERT_EQ(cache.size(), 1u);

  // First instance dies: the second still runs the shared entry.
  (*a).reset();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(call_i32(**b, "sum", arg), expected);

  // Even with every external module ref dropped, the entry retains the
  // translation, so its key can neither dangle nor be address-reused.
  module.reset();
  EXPECT_EQ(cache.lookup(&tm->funcs[0]), (*b)->active_stream(0));

  // Last instance dies: the module's entries go with it.
  (*b).reset();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.tier_ups(), 1u);  // monotonic miss count survives the drop
}

// --- Hot swap against a live cell cache -------------------------------------

/// Minimal Plugin-ABI module (() -> i32 returning 0) with pairs the
/// specializer fuses; `salt` just makes each build a distinct module.
wasmtest::ModuleBuilder swap_plugin_module(int32_t salt) {
  wasmtest::ModuleBuilder mb;
  mb.add_memory(1);
  wasmtest::FunctionBuilder& f =
      mb.add_func(wasm::FuncType{{}, {ValType::kI32}}, "run");
  uint32_t t = f.add_local(ValType::kI32);
  f.i32_const(salt)
      .i32_const(salt)
      .op(wasm::Op::kI32Sub)
      .local_set(t)
      .local_get(t)
      .end();
  return mb;
}

TEST(TierUp, HotSwapDropsOldModuleCacheEntries) {
  // A manager-owned cell cache outlives hot swaps. Swapping a slot destroys
  // the old plugin, so the old module's entries must leave the cache — a
  // later module whose streams land at a recycled address must never alias
  // them — and the replacement must genuinely re-tier.
  plugin::PluginManager mgr;
  mgr.enable_tier2(1);
  const wasm::CodeCache* cache = mgr.code_cache();
  ASSERT_NE(cache, nullptr);

  auto a = swap_plugin_module(3).build();
  const Status ins = mgr.install("sched", a);
  ASSERT_TRUE(ins.ok()) << ins.error().message;
  const auto call1 = mgr.call("sched", "run", {});
  ASSERT_TRUE(call1.ok()) << call1.error().message;
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_EQ(cache->tier_ups(), 1u);

  auto b = swap_plugin_module(7).build();
  ASSERT_TRUE(mgr.swap("sched", b).ok());
  EXPECT_EQ(cache->size(), 0u);
  ASSERT_TRUE(mgr.call("sched", "run", {}).ok());
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_EQ(cache->tier_ups(), 2u);

  ASSERT_TRUE(mgr.remove("sched").ok());
  EXPECT_EQ(cache->size(), 0u);
}

// --- Backend selection ------------------------------------------------------

TEST(TierUp, EnvKnobSelectsBackendButExplicitPinWins) {
  ASSERT_EQ(setenv("WARAN_DISPATCH", "specialized", 1), 0);
  auto via_env = instantiate(branchy_module(), {}, InstanceOptions{});
  ASSERT_NE(via_env, nullptr);
  EXPECT_EQ(via_env->dispatch(), Dispatch::kSpecialized);

  // An explicit InstanceOptions pin (what the differential oracle uses)
  // must override the environment.
  auto pinned = instantiate(branchy_module(), {}, switch_oracle());
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->dispatch(), Dispatch::kSwitch);
  ASSERT_EQ(unsetenv("WARAN_DISPATCH"), 0);

  std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(15)}};
  EXPECT_EQ(call_i32(*via_env, "sum", arg), call_i32(*pinned, "sum", arg));
}

// --- The rewrite itself -----------------------------------------------------

TEST(Specialize, RewriteShrinksStreamAndEmitsFusedForms) {
  // Specialized execution of the fusable shape must still match the
  // oracle, with fewer uops doing the work.
  auto oracle = instantiate(fusable_module(), {}, switch_oracle());
  auto tiered = instantiate(fusable_module(), {}, specialized(1));
  ASSERT_NE(oracle, nullptr);
  ASSERT_NE(tiered, nullptr);
  for (int32_t n : {0, 1, -7, 41, 1 << 30}) {
    std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(n)}};
    EXPECT_EQ(call_i32(*tiered, "mix", arg), call_i32(*oracle, "mix", arg))
        << "n=" << n;
  }

  auto bytes = fusable_module().build();
  auto decoded = wasm::decode_module(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(wasm::validate_module(*decoded).ok());
  auto tf = wasm::translate_function(*decoded, 0);
  ASSERT_TRUE(tf.ok());

  wasm::FuncProfile profile;
  profile.calls = 100;
  profile.cond_evals = 100;
  profile.cond_taken = 100;  // taken-biased: conditional collapse eligible
  wasm::TranslatedFunc spec = wasm::specialize(*tf, profile);

  EXPECT_LT(spec.ops.size(), tf->ops.size());
  // Frame geometry is preserved exactly — the interpreter's stack
  // reservation and local layout must not change across tiers.
  EXPECT_EQ(spec.max_stack, tf->max_stack);
  EXPECT_EQ(spec.num_params, tf->num_params);
  EXPECT_EQ(spec.num_locals, tf->num_locals);
  EXPECT_EQ(spec.result_arity, tf->result_arity);

  // At least one tier-2-only form must appear (the baseline translator
  // never emits ops past kLCAddSetI32).
  bool has_tier2_form = false;
  for (const wasm::UInstr& u : spec.ops) {
    if (static_cast<uint32_t>(u.op) >= static_cast<uint32_t>(UOp::kJump2)) {
      has_tier2_form = true;
      break;
    }
  }
  EXPECT_TRUE(has_tier2_form);

  // Idempotence of the pure rewrite: same input, same profile, same stream.
  wasm::TranslatedFunc again = wasm::specialize(*tf, profile);
  ASSERT_EQ(again.ops.size(), spec.ops.size());
  for (size_t i = 0; i < spec.ops.size(); ++i) {
    EXPECT_EQ(again.ops[i].op, spec.ops[i].op) << "uop " << i;
    EXPECT_EQ(again.ops[i].a, spec.ops[i].a) << "uop " << i;
    EXPECT_EQ(again.ops[i].b, spec.ops[i].b) << "uop " << i;
    EXPECT_EQ(again.ops[i].imm.u64, spec.ops[i].imm.u64) << "uop " << i;
  }
}

// --- Warm path --------------------------------------------------------------

TEST(TierUp, WarmPathIsAllocationFreeAfterTierUp) {
  // Tier-up itself is the one allocating step (the rewrite + cache insert);
  // after it, specialized warm calls must hit the heap exactly as often as
  // tier-1 warm calls: never.
  auto tiered = instantiate(branchy_module(), {}, specialized(4));
  ASSERT_NE(tiered, nullptr);
  std::vector<TypedValue> arg = {{ValType::kI32, wasm::Value::from_i32(63)}};
  for (int call = 0; call < 8; ++call) {
    (void)call_i32(*tiered, "sum", arg);  // warm past the threshold
  }
  ASSERT_EQ(tiered->tier_up_events(), 1u);

  const uint64_t before = heap_probe::allocations();
  for (int call = 0; call < 64; ++call) {
    auto r = tiered->call("sum", std::span<const TypedValue>(arg));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(heap_probe::allocations() - before, 0u);
}

// --- Whole-deployment determinism -------------------------------------------

void reset_global_obs() {
  obs::MetricsRegistry::global().reset_values();
  obs::AnomalyJournal::global().clear();
  obs::set_current_slot(0);
}

std::string run_tiered_deployment(uint32_t tier_up_threshold,
                                  uint64_t* tier_ups_out = nullptr) {
  reset_global_obs();
  rt::DeploymentConfig cfg;
  cfg.cells = 4;
  cfg.seed = 7;
  cfg.threaded = true;
  cfg.virtual_time = true;
  cfg.report_period_slots = 5;
  cfg.tier_up_threshold = tier_up_threshold;
  rt::GnbDeployment dep(cfg);
  EXPECT_TRUE(dep.status().ok())
      << (dep.status().ok() ? "" : dep.status().error().message);
  if (!dep.status().ok()) return {};
  auto st = dep.run_slots(25);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  if (tier_ups_out != nullptr) {
    *tier_ups_out = 0;
    for (uint32_t c = 0; c < dep.cells(); ++c) {
      const wasm::CodeCache* cache = dep.sched_plugins(c).code_cache();
      EXPECT_NE(cache, nullptr) << "cell " << c;
      if (cache != nullptr) *tier_ups_out += cache->tier_ups();
    }
  }
  return dep.digest();
}

TEST(TierUp, FourCellVirtualTimeDeploymentIsBitIdenticalWithTiering) {
  // Call-count-driven tier-up on each cell's own worker thread: repeated
  // runs must digest identically, and every cell must actually tier up.
  uint64_t tier_ups_a = 0, tier_ups_b = 0;
  const std::string a = run_tiered_deployment(8, &tier_ups_a);
  const std::string b = run_tiered_deployment(8, &tier_ups_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_GT(tier_ups_a, 0u);
  EXPECT_EQ(tier_ups_a, tier_ups_b);

  // Tiering must not change what the deployment computes. The digest's
  // metrics JSON legitimately differs (waran_plugin_tier_ups_total counts
  // the tier-ups themselves), so compare the scheduler-outcome suffix —
  // per-cell slice scheduling, agent and RIC accounting — which must be
  // identical to the untiered baseline.
  const std::string untiered = run_tiered_deployment(0);
  const size_t a_cells = a.find("\ncell0 ");
  const size_t u_cells = untiered.find("\ncell0 ");
  ASSERT_NE(a_cells, std::string::npos);
  ASSERT_NE(u_cells, std::string::npos);
  EXPECT_EQ(a.substr(a_cells), untiered.substr(u_cells));
}

}  // namespace
}  // namespace waran
