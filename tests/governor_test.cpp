// FuelGovernor tests (§6B resource management): floor guarantees, demand-
// proportional sharing, adaptation when load shifts, and the end-to-end
// effect — a heavy plugin stops hitting fuel exhaustion once idle slots
// donate headroom, while the floor still protects light plugins.
#include <gtest/gtest.h>

#include "plugin/governor.h"
#include "plugin/manager.h"
#include "wcc/compiler.h"

namespace waran::plugin {
namespace {

std::vector<uint8_t> compile(const char* src) {
  auto bytes = wcc::compile(src);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

TEST(Governor, FloorBeforeFirstRebalance) {
  FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 50'000});
  ASSERT_TRUE(gov.register_slot("a").ok());
  EXPECT_EQ(gov.allocation("a"), 50'000u);
  EXPECT_EQ(gov.allocation("missing"), 0u);
}

TEST(Governor, DuplicateAndBadRegistrations) {
  FuelGovernor gov({});
  ASSERT_TRUE(gov.register_slot("a").ok());
  EXPECT_FALSE(gov.register_slot("a").ok());
  EXPECT_FALSE(gov.register_slot("b", 0.0).ok());
  EXPECT_FALSE(gov.register_slot("c", -1.0).ok());
  EXPECT_TRUE(gov.remove_slot("a").ok());
  EXPECT_FALSE(gov.remove_slot("a").ok());
}

TEST(Governor, IdleSlotsSplitEvenly) {
  FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 100'000});
  ASSERT_TRUE(gov.register_slot("a").ok());
  ASSERT_TRUE(gov.register_slot("b").ok());
  gov.rebalance();
  // 2 x 100k floors + 800k spare split evenly.
  EXPECT_EQ(gov.allocation("a"), 500'000u);
  EXPECT_EQ(gov.allocation("b"), 500'000u);
}

TEST(Governor, DemandShiftsTheSpare) {
  FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 100'000, .alpha = 0.5});
  ASSERT_TRUE(gov.register_slot("busy").ok());
  ASSERT_TRUE(gov.register_slot("idle").ok());
  for (int i = 0; i < 20; ++i) gov.record_usage("busy", 400'000);
  gov.rebalance();
  EXPECT_GT(gov.allocation("busy"), 800'000u);
  EXPECT_GE(gov.allocation("idle"), 100'000u);  // floor guaranteed
  EXPECT_LE(gov.allocation("busy") + gov.allocation("idle"),
            1'000'000u + 2);  // budget respected (integer rounding slack)
}

TEST(Governor, WeightsScaleTheShare) {
  FuelGovernor gov({.budget_per_slot = 1'100'000, .floor = 50'000, .alpha = 0.5});
  ASSERT_TRUE(gov.register_slot("gold", 10.0).ok());
  ASSERT_TRUE(gov.register_slot("bronze", 1.0).ok());
  // Equal measured demand; gold's weight should dominate the spare.
  for (int i = 0; i < 10; ++i) {
    gov.record_usage("gold", 100'000);
    gov.record_usage("bronze", 100'000);
  }
  gov.rebalance();
  EXPECT_GT(gov.allocation("gold"), 5 * (gov.allocation("bronze") - 50'000));
}

TEST(Governor, AdaptsWhenLoadMoves) {
  FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 10'000, .alpha = 0.3});
  ASSERT_TRUE(gov.register_slot("a").ok());
  ASSERT_TRUE(gov.register_slot("b").ok());
  for (int i = 0; i < 30; ++i) gov.record_usage("a", 300'000);
  gov.rebalance();
  uint64_t a_high = gov.allocation("a");
  EXPECT_GT(a_high, gov.allocation("b"));
  // Load moves to b; a goes quiet.
  for (int i = 0; i < 60; ++i) {
    gov.record_usage("b", 300'000);
    gov.record_usage("a", 100);
  }
  gov.rebalance();
  EXPECT_GT(gov.allocation("b"), gov.allocation("a"));
  EXPECT_LT(gov.allocation("a"), a_high);
}

TEST(Governor, ApplyDrivesRealPluginBudgets) {
  // "heavy" needs ~600k instructions; under an even split of a 1M budget it
  // exhausts its fuel, but once the governor sees idle "light" it hands
  // heavy the headroom and the calls start succeeding.
  const char* kHeavy = R"(
    export fn run() -> i32 {
      var i: i32 = 0;
      while (i < 30000) { i = i + 1; }   // ~300k instructions
      output_write(0, 0);
      return 0;
    }
  )";
  const char* kLight = R"(
    export fn run() -> i32 { output_write(0, 0); return 0; }
  )";

  PluginLimits limits;
  limits.fuel_per_call = 200'000;       // even-split starting point: starves heavy
  limits.quarantine_after_faults = 50;  // let the governor act first
  PluginManager mgr(limits);
  ASSERT_TRUE(mgr.install("heavy", compile(kHeavy)).ok());
  ASSERT_TRUE(mgr.install("light", compile(kLight)).ok());

  // Starved under the even split.
  auto starved = mgr.call("heavy", "run", {});
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.error().code, Error::Code::kFuelExhausted);

  FuelGovernor gov({.budget_per_slot = 1'000'000, .floor = 20'000, .alpha = 0.5});
  ASSERT_TRUE(gov.register_slot("heavy").ok());
  ASSERT_TRUE(gov.register_slot("light").ok());

  bool heavy_succeeded = false;
  for (int slot_tick = 0; slot_tick < 20 && !heavy_succeeded; ++slot_tick) {
    auto light = mgr.call("light", "run", {});
    ASSERT_TRUE(light.ok());
    gov.record_usage("light", mgr.plugin("light")->last_call_instructions());

    auto heavy = mgr.call("heavy", "run", {});
    gov.record_usage("heavy", mgr.plugin("heavy")->last_call_instructions());
    heavy_succeeded = heavy.ok();

    gov.apply(mgr);
  }
  EXPECT_TRUE(heavy_succeeded);
  // And light still runs fine on its (floor-backed) allocation.
  EXPECT_TRUE(mgr.call("light", "run", {}).ok());
  EXPECT_GE(gov.allocation("light"), 20'000u);
}

}  // namespace
}  // namespace waran::plugin
