// Tests for the common substrate: byte IO, LEB128, stats, tracked heap, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bytes.h"
#include "common/log.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/tracked_alloc.h"

namespace waran {
namespace {

TEST(Result, HoldsValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = Error::decode("boom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Error::Code::kDecode);
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status bad = Error::trap("t");
  EXPECT_FALSE(bad.ok());
  EXPECT_STREQ(to_string(bad.error().code), "trap");
}

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16le(0x1234);
  w.u32le(0xdeadbeef);
  w.u64le(0x0123456789abcdefULL);
  w.f32le(3.5f);
  w.f64le(-2.25);

  ByteReader r(w.data());
  EXPECT_EQ(*r.u8(), 0xab);
  EXPECT_EQ(*r.u16le(), 0x1234);
  EXPECT_EQ(*r.u32le(), 0xdeadbeefu);
  EXPECT_EQ(*r.u64le(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.f32le(), 3.5f);
  EXPECT_EQ(*r.f64le(), -2.25);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReadPastEndFails) {
  std::vector<uint8_t> buf = {1, 2};
  ByteReader r(buf);
  EXPECT_TRUE(r.u32le().ok() == false);
  // Cursor did not advance on failure.
  EXPECT_EQ(r.pos(), 0u);
  EXPECT_EQ(*r.u16le(), 0x0201);
}

TEST(Leb128, UnsignedRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16384ULL, 0xffffffffULL,
                     0xffffffffffffffffULL}) {
    ByteWriter w;
    w.uleb(v);
    ByteReader r(w.data());
    auto got = r.uleb(64);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Leb128, SignedRoundTrip) {
  const int64_t cases[] = {0,  1,    -1,   63,
                           64, -64,  -65,  8191,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t v : cases) {
    ByteWriter w;
    w.sleb(v);
    ByteReader r(w.data());
    auto got = r.sleb(64);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(Leb128, U32Overflow) {
  // 5-byte encoding with bits beyond 32 set must fail for uleb32.
  std::vector<uint8_t> buf = {0xff, 0xff, 0xff, 0xff, 0x7f};  // 2^35-1
  ByteReader r(buf);
  EXPECT_FALSE(r.uleb(32).ok());
}

TEST(Leb128, TruncatedFails) {
  std::vector<uint8_t> buf = {0x80};
  ByteReader r(buf);
  EXPECT_FALSE(r.uleb(32).ok());
}

TEST(Leb128, PaddedZeroStillDecodes) {
  // Wasm allows redundant continuation bytes (used for back-patching).
  std::vector<uint8_t> out(5);
  write_uleb32_padded(out, 0, 300);
  ByteReader r(out);
  auto got = r.uleb(32);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 300u);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, NameRoundTrip) {
  ByteWriter w;
  w.name("hello");
  ByteReader r(w.data());
  auto s = r.name();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello");
}

TEST(QuantileAcc, ExactQuantiles) {
  QuantileAcc acc;
  for (int i = 1; i <= 100; ++i) acc.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 100.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 50.5);
  EXPECT_EQ(acc.count(), 100u);
}

TEST(QuantileAcc, EmptyIsZero) {
  QuantileAcc acc;
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(QuantileAcc, BoundaryQuantilesClampToEndpoints) {
  QuantileAcc acc;
  acc.add(3.0);
  acc.add(1.0);
  acc.add(2.0);
  // Nearest-rank endpoints: q=0 is the minimum, q=1 the maximum, and
  // out-of-range q clamps rather than indexing out of the sample vector.
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(acc.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.5), 3.0);
}

TEST(QuantileAcc, SingleSampleAllQuantilesEqual) {
  QuantileAcc acc;
  acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(QuantileAcc, StddevTwoSamples) {
  QuantileAcc acc;
  acc.add(2.0);
  acc.add(4.0);
  // Sample stddev (n-1 denominator): mean 3, squared deviations 1+1,
  // variance 2/1 = 2.
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), std::sqrt(2.0));
}

TEST(QuantileAcc, AddAfterQueryResorts) {
  QuantileAcc acc;
  acc.add(10);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 10.0);
  acc.add(1);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 1.0);
}

TEST(RateMeter, WindowedRate) {
  RateMeter m(1.0);
  m.add(0.0, 1000);
  m.add(0.5, 1000);
  EXPECT_DOUBLE_EQ(m.rate_bps(0.5), 2000.0);
  // At t=1.4, the t=0 entry fell out of the window but t=0.5 remains.
  EXPECT_DOUBLE_EQ(m.rate_bps(1.4), 1000.0);
  // At t=3, everything expired.
  EXPECT_DOUBLE_EQ(m.rate_bps(3.0), 0.0);
  EXPECT_EQ(m.total_bits(), 2000u);
}

TEST(RateMeter, EmptyWindowReportsZero) {
  RateMeter m(1.0);
  EXPECT_DOUBLE_EQ(m.rate_bps(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.rate_bps(100.0), 0.0);
  EXPECT_EQ(m.total_bits(), 0u);
}

TEST(RateMeter, NonMonotoneAddClampsForward) {
  RateMeter m(1.0);
  m.add(1.0, 1000);
  // A regressed timestamp (clock skew) is clamped to the newest entry, so
  // the sample lands in the current window instead of corrupting eviction.
  m.add(0.2, 1000);
  EXPECT_DOUBLE_EQ(m.rate_bps(1.0), 2000.0);
  EXPECT_EQ(m.total_bits(), 2000u);
  // Both entries now sit at t=1.0 and expire together.
  EXPECT_DOUBLE_EQ(m.rate_bps(2.5), 0.0);
}

TEST(RateMeter, StaleQueryAnchorsToNewestEntry) {
  RateMeter m(1.0);
  m.add(0.0, 1000);
  m.add(2.0, 500);
  // Querying at a time before the newest arrival anchors the window to the
  // newest entry: the t=0 sample already expired, only the t=2 one counts.
  EXPECT_DOUBLE_EQ(m.rate_bps(0.5), 500.0);
}

TEST(Log, PerComponentOverrides) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "mac"));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn, "mac"));

  set_log_level("mac", LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug, "mac"));
  // Other components still follow the global level.
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "e2"));

  set_log_level("e2", LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError, "e2"));

  clear_log_level_overrides();
  EXPECT_FALSE(log_enabled(LogLevel::kDebug, "mac"));
  EXPECT_TRUE(log_enabled(LogLevel::kError, "e2"));
}

TEST(TrackedHeap, LeakAccounting) {
  TrackedHeap heap;
  auto h1 = heap.allocate(100);
  ASSERT_TRUE(h1.ok());
  auto h2 = heap.allocate(50);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(heap.live_bytes(), 150u);
  EXPECT_TRUE(heap.free(*h1).ok());
  EXPECT_EQ(heap.live_bytes(), 50u);
  EXPECT_EQ(heap.live_allocations(), 1u);
}

TEST(TrackedHeap, DoubleFreeDetected) {
  TrackedHeap heap;
  auto h = heap.allocate(8);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(heap.free(*h).ok());
  auto second = heap.free(*h);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Error::Code::kState);
}

TEST(TrackedHeap, ZeroByteAllocationRejected) {
  TrackedHeap heap;
  EXPECT_FALSE(heap.allocate(0).ok());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Xoshiro, NormalHasSaneMoments) {
  Xoshiro256 rng(42);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

}  // namespace
}  // namespace waran
