// Global allocation probe: routes this binary's heap traffic through
// common/tracked_alloc's heap_probe counters by replacing the global
// operator new/delete, so a test or benchmark can assert that a measured
// region performed zero heap allocations (the engine's warm-call
// guarantee).
//
// Include this header from exactly ONE translation unit per binary — the
// replacement functions are ordinary (non-inline) definitions, as the
// standard requires for replaceable allocation functions. The header is
// deliberately gtest-free so benchmarks and tools can use it too.
//
// GCC flags the malloc-backed operator delete as a new/free mismatch; the
// pairing is consistent (operator new is malloc-backed too), so the
// warning is silenced around the definitions.
#pragma once

#include <cstdlib>
#include <new>

#include "common/tracked_alloc.h"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  waran::heap_probe::note_alloc(n);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  waran::heap_probe::note_alloc(n);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept {
  waran::heap_probe::note_free();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  waran::heap_probe::note_free();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  waran::heap_probe::note_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  waran::heap_probe::note_free();
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
