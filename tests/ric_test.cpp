// Near-RT RIC tests: E2-lite codecs, the framing communication plugin and
// its sanitization of corrupt frames, xApp decision logic (SLA + traffic
// steering), inter-xApp messaging, the vendor interop shim, and the full
// closed loop gNB -> RIC -> gNB.
#include <gtest/gtest.h>

#include "plugin/plugin.h"
#include "ric/e2lite.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "ric/transport.h"
#include "sched/native.h"
#include "wcc/compiler.h"

namespace waran::ric {
namespace {

IndicationReport sample_report() {
  IndicationReport r;
  r.slices.push_back({1, 10, 12e6, 8e6});
  r.slices.push_back({2, 20, 15e6, 15.1e6});
  r.ues.push_back({0x4601, 0, -80, -95, 12, 1});
  r.ues.push_back({0x4602, 0, -100, -70, 7, 1});
  return r;
}

TEST(E2Lite, IndicationRoundTrip) {
  IndicationReport r = sample_report();
  auto bytes = encode_indication(r);
  auto back = decode_indication(bytes);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(*back, r);
}

TEST(E2Lite, ControlRoundTrip) {
  std::vector<ControlAction> actions = {
      {ActionType::kSetSliceQuota, 1, 20},
      {ActionType::kHandover, 0x4601, 1},
      {ActionType::kSetCqiTable, 2, 0},
  };
  auto bytes = encode_control(actions);
  auto back = decode_control(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, actions);
}

TEST(E2Lite, RejectsTruncationAndBadCounts) {
  auto bytes = encode_indication(sample_report());
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(decode_indication(bytes).ok());

  std::vector<uint8_t> huge = {1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(decode_indication(huge).ok());

  std::vector<ControlAction> bad = {{static_cast<ActionType>(9), 0, 0}};
  EXPECT_FALSE(decode_control(encode_control(bad)).ok());
}

// --- Communication plugin. ---

class CommPluginTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bytes = plugin_sources::comm_framing();
    ASSERT_TRUE(bytes.ok()) << bytes.error().message;
    auto p = plugin::Plugin::load(*bytes);
    ASSERT_TRUE(p.ok()) << p.error().message;
    plugin_ = std::move(*p);
  }
  std::unique_ptr<plugin::Plugin> plugin_;
};

TEST_F(CommPluginTest, FrameUnframeRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 200, 255};
  auto framed = plugin_->call("frame", payload);
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed->size(), payload.size() + 12);
  // On-wire magic is little-endian 0xE2A0B1C2.
  uint32_t magic;
  memcpy(&magic, framed->data(), 4);
  EXPECT_EQ(magic, plugin_sources::kFrameMagic);

  auto unframed = plugin_->call("unframe", *framed);
  ASSERT_TRUE(unframed.ok()) << unframed.error().message;
  EXPECT_EQ(*unframed, payload);
}

TEST_F(CommPluginTest, EmptyPayloadFrames) {
  auto framed = plugin_->call("frame", {});
  ASSERT_TRUE(framed.ok());
  auto unframed = plugin_->call("unframe", *framed);
  ASSERT_TRUE(unframed.ok());
  EXPECT_TRUE(unframed->empty());
}

TEST_F(CommPluginTest, CorruptedChecksumRejectedInSandbox) {
  std::vector<uint8_t> payload = {9, 9, 9, 9};
  auto framed = plugin_->call("frame", payload);
  ASSERT_TRUE(framed.ok());
  (*framed)[9] ^= 0x40;  // flip a payload bit, checksum now stale
  auto unframed = plugin_->call("unframe", *framed);
  EXPECT_FALSE(unframed.ok());
}

TEST_F(CommPluginTest, BadMagicRejected) {
  std::vector<uint8_t> payload = {1};
  auto framed = plugin_->call("frame", payload);
  ASSERT_TRUE(framed.ok());
  (*framed)[0] ^= 0xff;
  EXPECT_FALSE(plugin_->call("unframe", *framed).ok());
}

TEST_F(CommPluginTest, ShortFrameRejected) {
  std::vector<uint8_t> tiny = {1, 2, 3};
  EXPECT_FALSE(plugin_->call("unframe", tiny).ok());
}

TEST_F(CommPluginTest, LengthMismatchRejected) {
  std::vector<uint8_t> payload = {5, 5};
  auto framed = plugin_->call("frame", payload);
  ASSERT_TRUE(framed.ok());
  framed->push_back(0);  // trailing junk: total no longer matches header len
  EXPECT_FALSE(plugin_->call("unframe", *framed).ok());
}

// --- Vendor interop shim. ---

TEST(VendorShim, Widens8BitCqiTo12Bit) {
  auto bytes = plugin_sources::vendor_widen();
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  auto p = plugin::Plugin::load(*bytes);
  ASSERT_TRUE(p.ok());

  // Vendor A: u32 n, then 3-byte records {u16 rnti, u8 cqi}.
  std::vector<uint8_t> input = {2, 0, 0, 0,
                                0x01, 0x46, 200,
                                0x02, 0x46, 15};
  auto out = (*p)->call("widen", input);
  ASSERT_TRUE(out.ok()) << out.error().message;
  ASSERT_EQ(out->size(), 4u + 2 * 8);
  uint32_t n, rnti0, cqi0, rnti1, cqi1;
  memcpy(&n, out->data(), 4);
  memcpy(&rnti0, out->data() + 4, 4);
  memcpy(&cqi0, out->data() + 8, 4);
  memcpy(&rnti1, out->data() + 12, 4);
  memcpy(&cqi1, out->data() + 16, 4);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(rnti0, 0x4601u);
  EXPECT_EQ(cqi0, 200u * 16);  // 8-bit value on the 12-bit scale
  EXPECT_EQ(rnti1, 0x4602u);
  EXPECT_EQ(cqi1, 15u * 16);
}

TEST(VendorShim, RejectsTruncatedVendorPayload) {
  auto bytes = plugin_sources::vendor_widen();
  ASSERT_TRUE(bytes.ok());
  auto p = plugin::Plugin::load(*bytes);
  ASSERT_TRUE(p.ok());
  std::vector<uint8_t> input = {5, 0, 0, 0, 1, 2};  // claims 5 records
  EXPECT_FALSE((*p)->call("widen", input).ok());
}

// --- xApps in isolation. ---

std::vector<ControlAction> run_xapp(std::span<const uint8_t> module_bytes,
                                    const IndicationReport& report) {
  auto p = plugin::Plugin::load(module_bytes);
  EXPECT_TRUE(p.ok());
  auto out = (*p)->call("on_indication", encode_indication(report));
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
  if (!out.ok()) return {};
  auto actions = decode_control(*out);
  EXPECT_TRUE(actions.ok());
  return actions.ok() ? *actions : std::vector<ControlAction>{};
}

TEST(SlaXapp, RaisesQuotaWhenUnderTarget) {
  auto bytes = plugin_sources::sla_xapp();
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  IndicationReport r;
  r.slices.push_back({7, 10, 12e6, 6e6});  // far below target
  auto actions = run_xapp(*bytes, r);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].type, ActionType::kSetSliceQuota);
  EXPECT_EQ(actions[0].a, 7u);
  EXPECT_EQ(actions[0].b, 11u);  // +1
}

TEST(SlaXapp, TrimsQuotaWhenOverTarget) {
  auto bytes = plugin_sources::sla_xapp();
  ASSERT_TRUE(bytes.ok());
  IndicationReport r;
  r.slices.push_back({7, 10, 12e6, 14e6});
  auto actions = run_xapp(*bytes, r);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].b, 9u);  // -1
}

TEST(SlaXapp, SilentWhenOnTargetAndCapsAtCarrier) {
  auto bytes = plugin_sources::sla_xapp();
  ASSERT_TRUE(bytes.ok());
  IndicationReport r;
  r.slices.push_back({1, 10, 12e6, 12e6});   // on target: no action
  r.slices.push_back({2, 52, 40e6, 10e6});   // already at the cap: no-op
  auto actions = run_xapp(*bytes, r);
  EXPECT_TRUE(actions.empty());
}

TEST(SteerXapp, HandsOverOnHysteresisExceeded) {
  auto bytes = plugin_sources::steer_xapp();
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  IndicationReport r;
  r.slices.push_back({1, 10, 0, 0});
  r.ues.push_back({0x4601, 0, -80, -75, 10, 1});   // neighbor +5 dB: handover
  r.ues.push_back({0x4602, 0, -80, -78, 10, 1});   // +2 dB: inside hysteresis
  r.ues.push_back({0x4603, 0, -80, -90, 10, 1});   // weaker: stay
  auto actions = run_xapp(*bytes, r);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].type, ActionType::kHandover);
  EXPECT_EQ(actions[0].a, 0x4601u);
  EXPECT_EQ(actions[0].b, 1u);
}

// --- Full closed loop. ---

class ClosedLoop : public ::testing::Test {
 protected:
  void SetUp() override {
    mac_ = std::make_unique<ran::GnbMac>(ran::MacConfig{});
    auto quotas = std::make_unique<QuotaTableInterScheduler>();
    quotas_ = quotas.get();
    mac_->set_inter_scheduler(std::move(quotas));

    ran::SliceConfig cfg;
    cfg.slice_id = 1;
    cfg.target_rate_bps = 12e6;
    mac_->add_slice(cfg, std::make_unique<sched::RrScheduler>());
    rnti_ = mac_->add_ue(1, ran::Channel::pinned_mcs(28),
                         ran::TrafficSource::full_buffer());

    agent_ = std::make_unique<GnbAgent>(0, *mac_, quotas_, link_, Duplex::Side::kA);
    ric_ = std::make_unique<NearRtRic>(link_, Duplex::Side::kB);

    auto comm = plugin_sources::comm_framing();
    ASSERT_TRUE(comm.ok());
    ASSERT_TRUE(agent_->load_comm_plugin(*comm).ok());
    ASSERT_TRUE(ric_->load_comm_plugin(*comm).ok());
    auto ctl = plugin_sources::control_dispatch();
    ASSERT_TRUE(ctl.ok());
    ASSERT_TRUE(agent_->load_control_plugin(*ctl).ok());
  }

  Duplex link_;
  std::unique_ptr<ran::GnbMac> mac_;
  QuotaTableInterScheduler* quotas_ = nullptr;
  uint32_t rnti_ = 0;
  std::unique_ptr<GnbAgent> agent_;
  std::unique_ptr<NearRtRic> ric_;
};

TEST_F(ClosedLoop, SlaXappConvergesSliceTowardTarget) {
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  // Start the slice with a starvation quota.
  quotas_->set_quota(1, 2);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(mac_->run_slots(100).ok());      // 100 ms
    ASSERT_TRUE(agent_->send_indication().ok());
    ASSERT_TRUE(ric_->poll().ok());
    ASSERT_TRUE(agent_->poll().ok());
  }
  double rate = mac_->slice_rate_bps(1);
  EXPECT_GT(rate, 10e6);
  EXPECT_LT(rate, 15e6);
  EXPECT_GT(agent_->stats().quota_updates, 0u);
  EXPECT_EQ(agent_->stats().frames_rejected, 0u);
  EXPECT_EQ(ric_->stats().frames_rejected, 0u);
}

TEST_F(ClosedLoop, SteeringTriggersHandoverCallback)  {
  auto steer = plugin_sources::steer_xapp();
  ASSERT_TRUE(steer.ok());
  ASSERT_TRUE(ric_->add_xapp("steer", *steer).ok());

  uint32_t handed_over_rnti = 0, target = 99;
  agent_->set_handover_handler([&](uint32_t rnti, uint32_t cell) {
    handed_over_rnti = rnti;
    target = cell;
  });
  agent_->set_ue_radio(rnti_, {-85, -70, 1});

  ASSERT_TRUE(mac_->run_slots(10).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  ASSERT_TRUE(agent_->poll().ok());

  EXPECT_EQ(handed_over_rnti, rnti_);
  EXPECT_EQ(target, 1u);
  EXPECT_EQ(agent_->stats().handovers, 1u);
}

TEST_F(ClosedLoop, CorruptedFramesAreSanitizedNotParsed) {
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  // Corrupt every frame on the wire.
  link_.add_fault_stage([](std::vector<uint8_t>& frame, Duplex::Side) {
    if (frame.size() > 10) frame[10] ^= 0xff;
    return Duplex::Fault{Duplex::FaultAction::kCorrupt};
  });
  ASSERT_TRUE(mac_->run_slots(10).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  EXPECT_EQ(ric_->stats().indications_processed, 0u);
  EXPECT_EQ(ric_->stats().frames_rejected, 1u);
  // Corrupted-but-delivered frames are visible in the link accounting, not
  // just as the receiver's rejection.
  EXPECT_EQ(link_.frames_corrupted(), 1u);
  EXPECT_EQ(link_.frames_delivered(), 1u);
  EXPECT_EQ(link_.frames_reordered(), 0u);
}

TEST_F(ClosedLoop, ReorderedFramesAreCountedAndStillProcessed) {
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  // Hold the first indication back until two later sends pass it.
  bool first = true;
  link_.add_fault_stage([&first](std::vector<uint8_t>&, Duplex::Side) {
    if (first) {
      first = false;
      return Duplex::Fault{Duplex::FaultAction::kReorder, 2};
    }
    return Duplex::Fault{};
  });
  quotas_->set_quota(1, 2);
  ASSERT_TRUE(mac_->run_slots(30).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(agent_->send_indication().ok());
  }
  ASSERT_TRUE(ric_->poll().ok());
  EXPECT_EQ(link_.frames_reordered(), 1u);
  EXPECT_EQ(link_.delayed_in_flight(), 0u);  // released after 2 later sends
  // All three indications (in permuted order) are intact and parse.
  EXPECT_EQ(ric_->stats().indications_processed, 3u);
  EXPECT_EQ(ric_->stats().frames_rejected, 0u);
  EXPECT_EQ(link_.frames_delivered(), link_.frames_sent());
}

TEST_F(ClosedLoop, DuplicatedAndDroppedFramesBalanceLinkAccounting) {
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  // Duplicate the first frame, drop the second, deliver the rest.
  uint32_t n = 0;
  link_.add_fault_stage([&n](std::vector<uint8_t>&, Duplex::Side) {
    ++n;
    if (n == 1) return Duplex::Fault{Duplex::FaultAction::kDuplicate};
    if (n == 2) return Duplex::Fault{Duplex::FaultAction::kDrop};
    return Duplex::Fault{};
  });
  ASSERT_TRUE(mac_->run_slots(10).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(agent_->send_indication().ok());
  }
  ASSERT_TRUE(ric_->poll().ok());
  EXPECT_EQ(link_.frames_sent(), 4u);
  EXPECT_EQ(link_.frames_duplicated(), 1u);
  EXPECT_EQ(link_.frames_dropped(), 1u);
  // Conservation: sent + duplicated == delivered + dropped (+ held).
  EXPECT_EQ(link_.frames_sent() + link_.frames_duplicated(),
            link_.frames_delivered() + link_.frames_dropped());
  // The duplicate is a well-formed frame: it parses as a second indication.
  EXPECT_EQ(ric_->stats().indications_processed, 4u);
}

TEST_F(ClosedLoop, FaultyXappIsContainedOthersKeepWorking) {
  // First xApp traps on every indication; the SLA xApp still runs.
  auto bad = wcc::compile("export fn on_indication() -> i32 { trap(); return 0; }");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(ric_->add_xapp("bad", *bad).ok());
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  quotas_->set_quota(1, 2);
  ASSERT_TRUE(mac_->run_slots(200).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  ASSERT_TRUE(agent_->poll().ok());

  EXPECT_GT(ric_->stats().xapp_faults, 0u);
  EXPECT_GT(agent_->stats().quota_updates, 0u);  // SLA actions still landed
}

TEST_F(ClosedLoop, XappHotSwapChangesPolicyLive) {
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(sla.ok());
  ASSERT_TRUE(ric_->add_xapp("sla", *sla).ok());

  // Swap the SLA xApp for a no-op variant mid-flight.
  auto noop = wcc::compile(R"(
    export fn on_indication() -> i32 {
      store32(0, 2); store32(4, 0);
      output_write(0, 8);
      return 0;
    }
  )");
  ASSERT_TRUE(noop.ok());

  quotas_->set_quota(1, 2);
  ASSERT_TRUE(mac_->run_slots(200).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  uint64_t actions_before = ric_->stats().actions_sent;
  EXPECT_GT(actions_before, 0u);

  ASSERT_TRUE(ric_->plugins().swap("xapp:sla", *noop).ok());
  ASSERT_TRUE(mac_->run_slots(200).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  EXPECT_EQ(ric_->stats().actions_sent, actions_before);  // no new actions
}

TEST_F(ClosedLoop, InterXappMessagingDelivers) {
  auto counter = plugin_sources::counter_xapp();
  ASSERT_TRUE(counter.ok()) << counter.error().message;
  // xApp 0 receives; xApp 1 sends to index 0 on every indication.
  ASSERT_TRUE(ric_->add_xapp("receiver", *counter).ok());
  ASSERT_TRUE(ric_->add_xapp("sender", *counter).ok());

  ASSERT_TRUE(mac_->run_slots(5).ok());
  ASSERT_TRUE(agent_->send_indication().ok());
  ASSERT_TRUE(ric_->poll().ok());
  // Both xApps sent a 1-byte note to index 0; receiver got 2 messages.
  EXPECT_EQ(ric_->stats().messages_delivered, 2u);
}

}  // namespace
}  // namespace waran::ric

// Appended: the feature-upgrade story — a new control action (type 4,
// set_report_period) rolled out purely by hot-swapping the control plugin.
namespace waran::ric {
namespace {

class FeatureUpgrade : public ::testing::Test {
 protected:
  void SetUp() override {
    mac_ = std::make_unique<ran::GnbMac>(ran::MacConfig{});
    mac_->set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
    ran::SliceConfig cfg;
    cfg.slice_id = 1;
    mac_->add_slice(cfg, std::make_unique<sched::RrScheduler>());
    agent_ = std::make_unique<GnbAgent>(0, *mac_, nullptr, link_, Duplex::Side::kA);
    auto comm = plugin_sources::comm_framing();
    ASSERT_TRUE(comm.ok());
    ASSERT_TRUE(agent_->load_comm_plugin(*comm).ok());
    // A standalone framing plugin to forge RIC-side frames in the test.
    auto framer = plugin::Plugin::load(*comm);
    ASSERT_TRUE(framer.ok());
    framer_ = std::move(*framer);
  }

  void send_control(const std::vector<ControlAction>& actions) {
    auto frame = framer_->call("frame", encode_control(actions));
    ASSERT_TRUE(frame.ok());
    link_.send(Duplex::Side::kB, *frame);
  }

  Duplex link_;
  std::unique_ptr<ran::GnbMac> mac_;
  std::unique_ptr<GnbAgent> agent_;
  std::unique_ptr<plugin::Plugin> framer_;
};

TEST_F(FeatureUpgrade, V1SkipsUnknownActionV2AppliesIt) {
  auto v1 = plugin_sources::control_dispatch();
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(agent_->load_control_plugin(*v1).ok());
  EXPECT_EQ(agent_->report_period_slots(), 100u);

  // v1 era: the new action is skipped silently; known actions still work.
  send_control({{ActionType::kSetReportPeriod, 10, 0},
                {ActionType::kSetCqiTable, 1, 0}});
  ASSERT_TRUE(agent_->poll().ok());
  EXPECT_EQ(agent_->report_period_slots(), 100u);   // unknown to v1
  EXPECT_EQ(agent_->cqi_table_index(), 1u);         // known action applied
  EXPECT_EQ(mac_->mcs_table(), ran::McsTable::kQam256);  // ...and took effect
  EXPECT_EQ(agent_->stats().frames_rejected, 0u);   // no fault either

  // Hot-swap to v2: the same wire bytes now take effect.
  auto v2 = plugin_sources::control_dispatch_v2();
  ASSERT_TRUE(v2.ok()) << v2.error().message;
  ASSERT_TRUE(agent_->load_control_plugin(*v2).ok());
  send_control({{ActionType::kSetReportPeriod, 10, 0}});
  ASSERT_TRUE(agent_->poll().ok());
  EXPECT_EQ(agent_->report_period_slots(), 10u);
  EXPECT_EQ(agent_->stats().period_updates, 1u);
}

TEST_F(FeatureUpgrade, V2RejectsOutOfRangePeriods) {
  auto v2 = plugin_sources::control_dispatch_v2();
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(agent_->load_control_plugin(*v2).ok());
  send_control({{ActionType::kSetReportPeriod, 0, 0}});
  ASSERT_TRUE(agent_->poll().ok());
  EXPECT_EQ(agent_->report_period_slots(), 100u);  // host-side sanity bound
  EXPECT_EQ(agent_->stats().period_updates, 0u);
}

}  // namespace
}  // namespace waran::ric

// Appended: one near-RT RIC serving multiple E2 nodes (real O-RAN topology).
namespace waran::ric {
namespace {

TEST(MultiCell, OneRicDrivesTwoGnbsIndependently) {
  auto comm = plugin_sources::comm_framing();
  auto ctl = plugin_sources::control_dispatch();
  auto sla = plugin_sources::sla_xapp();
  ASSERT_TRUE(comm.ok() && ctl.ok() && sla.ok());

  struct Cell {
    std::unique_ptr<ran::GnbMac> mac;
    QuotaTableInterScheduler* quotas;
    std::unique_ptr<Duplex> link;
    std::unique_ptr<GnbAgent> agent;
  };
  auto make_cell = [&](uint32_t id, double target_bps) {
    Cell c;
    c.mac = std::make_unique<ran::GnbMac>(ran::MacConfig{});
    auto q = std::make_unique<QuotaTableInterScheduler>();
    c.quotas = q.get();
    c.mac->set_inter_scheduler(std::move(q));
    ran::SliceConfig cfg;
    cfg.slice_id = 1;
    cfg.target_rate_bps = target_bps;
    c.mac->add_slice(cfg, std::make_unique<sched::RrScheduler>());
    c.mac->add_ue(1, ran::Channel::pinned_mcs(28), ran::TrafficSource::full_buffer());
    c.link = std::make_unique<Duplex>();
    c.agent = std::make_unique<GnbAgent>(id, *c.mac, c.quotas, *c.link,
                                         Duplex::Side::kA);
    EXPECT_TRUE(c.agent->load_comm_plugin(*comm).ok());
    EXPECT_TRUE(c.agent->load_control_plugin(*ctl).ok());
    c.quotas->set_quota(1, 2);  // both start starved
    return c;
  };

  Cell cell0 = make_cell(0, 10e6);
  Cell cell1 = make_cell(1, 20e6);

  NearRtRic ric(*cell0.link, Duplex::Side::kB);
  ric.add_link(*cell1.link, Duplex::Side::kB);
  ASSERT_TRUE(ric.load_comm_plugin(*comm).ok());
  ASSERT_TRUE(ric.add_xapp("sla", *sla).ok());
  EXPECT_EQ(ric.link_count(), 2u);

  for (int round = 0; round < 120; ++round) {
    ASSERT_TRUE(cell0.mac->run_slots(100).ok());
    ASSERT_TRUE(cell1.mac->run_slots(100).ok());
    ASSERT_TRUE(cell0.agent->send_indication().ok());
    ASSERT_TRUE(cell1.agent->send_indication().ok());
    ASSERT_TRUE(ric.poll().ok());
    ASSERT_TRUE(cell0.agent->poll().ok());
    ASSERT_TRUE(cell1.agent->poll().ok());
  }

  // Each cell converged to its own target — control frames were routed to
  // the link their indications came from.
  EXPECT_NEAR(cell0.mac->slice_rate_bps(1) / 1e6, 10.0, 2.5);
  EXPECT_NEAR(cell1.mac->slice_rate_bps(1) / 1e6, 20.0, 3.5);
  EXPECT_GT(cell0.agent->stats().quota_updates, 0u);
  EXPECT_GT(cell1.agent->stats().quota_updates, 0u);
  EXPECT_EQ(ric.stats().indications_processed, 240u);
}

}  // namespace
}  // namespace waran::ric
