// Engine stress and edge-of-spec tests: deep nesting, many locals, large
// dispatch tables, growth boundaries, and value-representation corners that
// a scheduler plugin could plausibly hit under adversarial inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "tests/wasm_test_util.h"

namespace waran {
namespace {

using namespace wasmtest;

TEST(EngineStress, DeeplyNestedBlocks) {
  // 200 nested blocks with a br out of the middle.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) f.block();
  f.br(kDepth / 2);  // jump out of 100 levels at once
  for (int i = 0; i < kDepth; ++i) f.end();
  f.i32_const(77).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f"), 77);
}

TEST(EngineStress, ManyLocalsRunLengthEncoding) {
  // 1000 locals of alternating types exercise the run-length local groups.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  std::vector<uint32_t> idx;
  for (int i = 0; i < 500; ++i) {
    idx.push_back(f.add_local(ValType::kI32));
    f.add_local(ValType::kF64);
  }
  // Sum a few of them after setting.
  f.i32_const(11).local_set(idx[0]);
  f.i32_const(22).local_set(idx[499]);
  f.local_get(idx[0]).local_get(idx[499]).op(Op::kI32Add).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f"), 33);
}

TEST(EngineStress, LargeBrTable) {
  // 256-way dispatch; every lane returns its index + 1000.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  const uint32_t kLanes = 256;
  for (uint32_t i = 0; i < kLanes + 1; ++i) f.block();
  std::vector<uint32_t> targets(kLanes);
  for (uint32_t i = 0; i < kLanes; ++i) targets[i] = i;
  f.local_get(0).br_table(targets, kLanes);
  for (uint32_t i = 0; i < kLanes; ++i) {
    f.end();
    f.i32_const(static_cast<int32_t>(1000 + i)).ret();
  }
  f.end();  // outermost (default)
  f.i32_const(-1).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 1000);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(255)}), 1255);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(256)}), -1);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(-5)}), -1);
}

TEST(EngineStress, LoopWithBlockResult) {
  // A block with a result fed by a loop-exit br: exercises branch value
  // transfer across label pops.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  uint32_t i = f.add_local(ValType::kI32);
  f.block(BlockT::i32());
  f.loop();
  f.local_get(i).i32_const(1).op(Op::kI32Add).local_tee(i);
  f.local_get(0).op(Op::kI32GeS).if_();
  f.local_get(i).i32_const(100).op(Op::kI32Mul).br(2);  // exit with value
  f.end();
  f.br(0);
  f.end();
  // Unreachable fallthrough of the block still needs type-correct stack.
  f.i32_const(0);
  f.end();
  f.end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(7)}), 700);
}

TEST(EngineStress, GrowThenAccessBoundary) {
  // Access just past the old boundary fails before grow, succeeds after.
  ModuleBuilder mb;
  mb.add_memory(1, 4);
  auto& peek = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek");
  peek.local_get(0).load(Op::kI32Load, 0, 2).end();
  auto& grow = mb.add_func(FuncType{{}, {ValType::kI32}}, "grow");
  grow.i32_const(1).memory_grow().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  int32_t boundary = 65536;
  EXPECT_EQ(call_expect_trap(*inst, "peek", {TypedValue::i32(boundary)}).code,
            Error::Code::kTrap);
  EXPECT_EQ(call_i32(*inst, "grow"), 1);
  EXPECT_EQ(call_i32(*inst, "peek", {TypedValue::i32(boundary)}), 0);
  // New boundary still enforced.
  EXPECT_EQ(call_expect_trap(*inst, "peek", {TypedValue::i32(2 * boundary)}).code,
            Error::Code::kTrap);
}

TEST(EngineStress, SelectOnFloats) {
  ModuleBuilder mb;
  auto& f = mb.add_func(
      FuncType{{ValType::kF64, ValType::kF64, ValType::kI32}, {ValType::kF64}}, "f");
  f.local_get(0).local_get(1).local_get(2).op(Op::kSelect).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f",
                            {TypedValue::f64(1.5), TypedValue::f64(2.5),
                             TypedValue::i32(1)}),
                   1.5);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f",
                            {TypedValue::f64(1.5), TypedValue::f64(2.5),
                             TypedValue::i32(0)}),
                   2.5);
}

TEST(EngineStress, NaNBitsPreservedThroughReinterpret) {
  // A signalling-ish NaN payload must survive i64 <-> f64 reinterpretation.
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI64}, {ValType::kI64}}, "f");
  f.local_get(0).op(Op::kF64ReinterpretI64).op(Op::kI64ReinterpretF64).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  int64_t nan_payload = 0x7ff8dead'beefcafeLL;
  EXPECT_EQ(call_i64(*inst, "f", {TypedValue::i64(nan_payload)}), nan_payload);
}

TEST(EngineStress, MutualRecursionBoundedByDepth) {
  ModuleBuilder mb;
  FuncType sig{{ValType::kI32}, {ValType::kI32}};
  // even(n) / odd(n) mutual recursion.
  auto& even = mb.add_func(sig, "even");
  auto& odd = mb.add_func(sig);
  even.local_get(0).op(Op::kI32Eqz).if_(BlockT::i32());
  even.i32_const(1);
  even.else_();
  even.local_get(0).i32_const(1).op(Op::kI32Sub).call(odd.index());
  even.end().end();
  odd.local_get(0).op(Op::kI32Eqz).if_(BlockT::i32());
  odd.i32_const(0);
  odd.else_();
  odd.local_get(0).i32_const(1).op(Op::kI32Sub).call(even.index());
  odd.end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "even", {TypedValue::i32(100)}), 1);
  EXPECT_EQ(call_i32(*inst, "even", {TypedValue::i32(101)}), 0);
  // Beyond the call-depth cap it traps instead of smashing the host stack.
  auto err = call_expect_trap(*inst, "even", {TypedValue::i32(100000)});
  EXPECT_NE(err.message.find("call stack"), std::string::npos);
}

TEST(EngineStress, FuelHaltsDeepRecursionMidway) {
  ModuleBuilder mb;
  FuncType sig{{ValType::kI32}, {ValType::kI32}};
  auto& f = mb.add_func(sig, "f");
  f.local_get(0).op(Op::kI32Eqz).if_(BlockT::i32());
  f.i32_const(0);
  f.else_();
  f.local_get(0).i32_const(1).op(Op::kI32Sub).call(0);
  f.end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  inst->set_fuel(100);  // far less than needed for n=200 recursion
  auto r = inst->call("f", std::vector<TypedValue>{TypedValue::i32(200)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kFuelExhausted);
}

TEST(EngineStress, GlobalsOfEveryType) {
  ModuleBuilder mb;
  uint32_t gi32 = mb.add_global(ValType::kI32, true, wasm::Value::from_i32(-3));
  uint32_t gi64 = mb.add_global(ValType::kI64, true, wasm::Value::from_i64(1LL << 40));
  uint32_t gf32 = mb.add_global(ValType::kF32, true, wasm::Value::from_f32(0.5f));
  uint32_t gf64 = mb.add_global(ValType::kF64, true, wasm::Value::from_f64(-2.25));
  auto& f = mb.add_func(FuncType{{}, {ValType::kF64}}, "f");
  // f64(i32) + f64(i64 >> 40) + promote(f32) + f64
  f.global_get(gi32).op(Op::kF64ConvertI32S);
  f.global_get(gi64).i64_const(40).op(Op::kI64ShrU).op(Op::kF64ConvertI64S);
  f.op(Op::kF64Add);
  f.global_get(gf32).op(Op::kF64PromoteF32).op(Op::kF64Add);
  f.global_get(gf64).op(Op::kF64Add);
  f.end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f"), -3.0 + 1.0 + 0.5 - 2.25);
}

TEST(EngineStress, MemoryCopyOverlappingRegions) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  const uint8_t seed[] = {1, 2, 3, 4, 5, 6, 7, 8};
  mb.add_data(100, seed);
  auto& f = mb.add_func(FuncType{{}, {}}, "shift");
  // Overlapping forward copy: [100..108) -> [104..112) (memmove semantics).
  f.i32_const(104).i32_const(100).i32_const(8).memory_copy().end();
  auto& peek = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek8");
  peek.local_get(0).load(Op::kI32Load8U, 0, 0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  ASSERT_TRUE(inst->call("shift", std::vector<TypedValue>{}).ok());
  // memmove: dst keeps the original source bytes, not a cascaded smear.
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(104)}), 1);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(111)}), 8);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(100)}), 1);  // prefix intact
}

TEST(EngineStress, BulkOpsOutOfBoundsTrap) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& fill = mb.add_func(FuncType{{ValType::kI32}, {}}, "fill");
  fill.local_get(0).i32_const(0).i32_const(16).memory_fill().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_TRUE(inst->call("fill", std::vector<TypedValue>{TypedValue::i32(65520)}).ok());
  auto err = call_expect_trap(*inst, "fill", {TypedValue::i32(65521)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

}  // namespace
}  // namespace waran
