// System-level integration stress: many slices, mixed native and Wasm
// schedulers, fading channels, bursty traffic, hot swaps and quarantines
// happening mid-run — with conservation invariants checked throughout.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "plugin/manager.h"
#include "ran/mac.h"
#include "ran/phy_tables.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

namespace waran {
namespace {

TEST(Integration, EightSlicesMixedSchedulersTenSeconds) {
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  plugin::PluginManager mgr;

  const char* kinds[] = {"rr", "pf", "mt"};
  Xoshiro256 rng(2026);
  uint32_t total_ues = 0;
  for (uint32_t slice_id = 1; slice_id <= 8; ++slice_id) {
    ran::SliceConfig cfg;
    cfg.slice_id = slice_id;
    cfg.weight = 1.0 + (slice_id % 3);
    const char* kind = kinds[slice_id % 3];
    if (slice_id % 2 == 0) {
      // Even slices run Wasm plugins, odd slices native schedulers.
      std::string slot = "s" + std::to_string(slice_id);
      auto bytes = sched::plugins::scheduler(kind);
      ASSERT_TRUE(bytes.ok());
      ASSERT_TRUE(mgr.install(slot, *bytes).ok());
      mac.add_slice(cfg, std::make_unique<sched::WasmIntraScheduler>(mgr, slot));
    } else {
      mac.add_slice(cfg, sched::make_native_scheduler(kind));
    }
    uint32_t n_ues = 2 + slice_id % 4;
    for (uint32_t u = 0; u < n_ues; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 8.0 + rng.uniform() * 14.0;
      ran::TrafficSource traffic =
          u % 3 == 0   ? ran::TrafficSource::full_buffer()
          : u % 3 == 1 ? ran::TrafficSource::cbr(1e6 + rng.uniform() * 4e6)
                       : ran::TrafficSource::on_off(8e6, 200, 400, slice_id * 10 + u);
      mac.add_ue(slice_id, ran::Channel::fading(fading, slice_id * 100 + u), traffic);
      ++total_ues;
    }
  }

  ASSERT_TRUE(mac.run_slots(10000).ok());

  // Invariants.
  uint64_t total_delivered = 0;
  for (uint32_t rnti : mac.ue_rntis()) {
    total_delivered += mac.ue(rnti)->delivered_bits();
  }
  // Capacity bound: no more bits than a full carrier at peak MCS for 10 s.
  uint64_t capacity_bound =
      static_cast<uint64_t>(ran::transport_block_bits(28, 52)) * 10000;
  EXPECT_LE(total_delivered, capacity_bound);
  EXPECT_GT(total_delivered, capacity_bound / 20);  // and it actually ran

  for (uint32_t slice_id : mac.slice_ids()) {
    const ran::SliceStats* st = mac.slice_stats(slice_id);
    EXPECT_EQ(st->scheduler_faults, 0u) << "slice " << slice_id
                                        << ": " << st->last_error;
    EXPECT_LE(st->last_quota, 52u);
  }
  EXPECT_EQ(mac.ue_rntis().size(), total_ues);
}

TEST(Integration, HotSwapStormNeverDropsService) {
  // Swap a slice's plugin every 200 ms among all three policies while UEs
  // stream; throughput must never collapse and no slot may fault.
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  plugin::PluginManager mgr;
  auto rr = sched::plugins::scheduler("rr");
  ASSERT_TRUE(rr.ok());
  ASSERT_TRUE(mgr.install("mvno", *rr).ok());
  ran::SliceConfig cfg;
  cfg.slice_id = 1;
  mac.add_slice(cfg, std::make_unique<sched::WasmIntraScheduler>(mgr, "mvno"));
  uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(24),
                             ran::TrafficSource::full_buffer());

  const char* kinds[] = {"pf", "mt", "rr"};
  uint64_t last_delivered = 0;
  for (int round = 0; round < 15; ++round) {
    ASSERT_TRUE(mac.run_slots(200).ok());
    uint64_t now_delivered = mac.ue(rnti)->delivered_bits();
    EXPECT_GT(now_delivered, last_delivered) << "stalled at round " << round;
    last_delivered = now_delivered;
    auto bytes = sched::plugins::scheduler(kinds[round % 3]);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(mgr.swap("mvno", *bytes).ok());
  }
  EXPECT_EQ(mac.slice_stats(1)->scheduler_faults, 0u);
  EXPECT_EQ(mgr.health("mvno")->swaps, 15u);
}

TEST(Integration, QuarantinedPluginSliceRunsOnFallbackIndefinitely) {
  plugin::PluginLimits limits;
  limits.quarantine_after_faults = 3;
  ran::GnbMac mac(ran::MacConfig{});
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  plugin::PluginManager mgr(limits);
  auto bad = sched::plugins::faulty("oob");
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(mgr.install("evil", *bad).ok());
  ran::SliceConfig cfg;
  cfg.slice_id = 1;
  mac.add_slice(cfg, std::make_unique<sched::WasmIntraScheduler>(mgr, "evil"));
  uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(20),
                             ran::TrafficSource::full_buffer());

  ASSERT_TRUE(mac.run_slots(2000).ok());
  EXPECT_TRUE(mgr.health("evil")->quarantined);
  // Sandbox faults stop at quarantine; the fallback keeps serving. After
  // quarantine every slot still counts as a (cheap) scheduler fault at the
  // MAC, but throughput is unaffected.
  EXPECT_EQ(mgr.health("evil")->faults, 3u);
  double rate = mac.ue(rnti)->rate_bps(mac.now_s());
  EXPECT_GT(rate, 10e6);  // full RR fallback on 52 PRBs at MCS 20
}

TEST(Integration, FallbackMatchesNativeRrThroughput) {
  // A quarantined plugin's fallback (host RR) must deliver the same rate a
  // native RR scheduler would — operators lose the custom policy, not
  // service.
  auto run = [](bool broken) {
    ran::GnbMac mac(ran::MacConfig{});
    mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
    plugin::PluginManager mgr;
    ran::SliceConfig cfg;
    cfg.slice_id = 1;
    if (broken) {
      auto bad = sched::plugins::faulty("loop");
      EXPECT_TRUE(bad.ok());
      EXPECT_TRUE(mgr.install("s", *bad).ok());
      mac.add_slice(cfg, std::make_unique<sched::WasmIntraScheduler>(mgr, "s"));
    } else {
      mac.add_slice(cfg, std::make_unique<sched::RrScheduler>());
    }
    uint32_t a = mac.add_ue(1, ran::Channel::pinned_mcs(22),
                            ran::TrafficSource::full_buffer());
    uint32_t b = mac.add_ue(1, ran::Channel::pinned_mcs(22),
                            ran::TrafficSource::full_buffer());
    EXPECT_TRUE(mac.run_slots(3000).ok());
    return mac.ue(a)->rate_bps(mac.now_s()) + mac.ue(b)->rate_bps(mac.now_s());
  };
  double native_rr = run(false);
  double fallback = run(true);
  EXPECT_NEAR(fallback / native_rr, 1.0, 0.05);
}

}  // namespace
}  // namespace waran
