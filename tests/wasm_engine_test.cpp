// Execution tests for the wasm engine: arithmetic semantics, control flow,
// memory, traps, fuel metering, and host calls. Modules are produced by the
// wasmbuilder and go through the full decode -> validate -> instantiate
// pipeline, so these double as encoder/decoder round-trip tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tests/wasm_test_util.h"

namespace waran {
namespace {

using namespace wasmtest;

ModuleBuilder unary_i32_module(const char* name, std::function<void(FunctionBuilder&)> body) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, name);
  body(f);
  f.end();
  return mb;
}

TEST(Engine, ConstReturn) {
  ModuleBuilder mb;
  mb.add_func(FuncType{{}, {ValType::kI32}}, "f").i32_const(42).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f"), 42);
}

TEST(Engine, AddSubMul) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "f");
  // (a + b) * (a - b)
  f.local_get(0).local_get(1).op(Op::kI32Add);
  f.local_get(0).local_get(1).op(Op::kI32Sub);
  f.op(Op::kI32Mul).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(7), TypedValue::i32(3)}), 40);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(-2), TypedValue::i32(5)}), -21);
}

TEST(Engine, I32WrapAround) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(std::numeric_limits<int32_t>::max()).i32_const(1).op(Op::kI32Add).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f"), std::numeric_limits<int32_t>::min());
}

TEST(Engine, DivisionSemantics) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "divs");
  f.local_get(0).local_get(1).op(Op::kI32DivS).end();
  auto& g = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "rems");
  g.local_get(0).local_get(1).op(Op::kI32RemS).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  EXPECT_EQ(call_i32(*inst, "divs", {TypedValue::i32(-7), TypedValue::i32(2)}), -3);
  EXPECT_EQ(call_i32(*inst, "rems", {TypedValue::i32(-7), TypedValue::i32(2)}), -1);

  // Division by zero traps.
  auto err = call_expect_trap(*inst, "divs", {TypedValue::i32(1), TypedValue::i32(0)});
  EXPECT_EQ(err.code, Error::Code::kTrap);

  // INT_MIN / -1 traps (overflow); INT_MIN % -1 == 0.
  err = call_expect_trap(*inst, "divs",
                         {TypedValue::i32(std::numeric_limits<int32_t>::min()),
                          TypedValue::i32(-1)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
  EXPECT_EQ(call_i32(*inst, "rems",
                     {TypedValue::i32(std::numeric_limits<int32_t>::min()),
                      TypedValue::i32(-1)}),
            0);
}

TEST(Engine, ShiftMasking) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "shl");
  f.local_get(0).local_get(1).op(Op::kI32Shl).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  // Shift count is taken modulo 32.
  EXPECT_EQ(call_i32(*inst, "shl", {TypedValue::i32(1), TypedValue::i32(33)}), 2);
}

TEST(Engine, ClzCtzPopcnt) {
  auto mk = [](Op op) {
    ModuleBuilder mb;
    auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
    f.local_get(0).op(op).end();
    return mb;
  };
  auto clz = instantiate(mk(Op::kI32Clz));
  auto ctz = instantiate(mk(Op::kI32Ctz));
  auto pop = instantiate(mk(Op::kI32Popcnt));
  ASSERT_TRUE(clz && ctz && pop);
  EXPECT_EQ(call_i32(*clz, "f", {TypedValue::i32(0)}), 32);
  EXPECT_EQ(call_i32(*clz, "f", {TypedValue::i32(1)}), 31);
  EXPECT_EQ(call_i32(*ctz, "f", {TypedValue::i32(0)}), 32);
  EXPECT_EQ(call_i32(*ctz, "f", {TypedValue::i32(8)}), 3);
  EXPECT_EQ(call_i32(*pop, "f", {TypedValue::i32(-1)}), 32);
  EXPECT_EQ(call_i32(*pop, "f", {TypedValue::i32(0xf0)}), 4);
}

TEST(Engine, RotateOps) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}}, "rotl");
  f.local_get(0).local_get(1).op(Op::kI32Rotl).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "rotl", {TypedValue::i32(0x80000000), TypedValue::i32(1)}), 1);
}

TEST(Engine, I64Arithmetic) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI64, ValType::kI64}, {ValType::kI64}}, "mul");
  f.local_get(0).local_get(1).op(Op::kI64Mul).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i64(*inst, "mul",
                     {TypedValue::i64(1LL << 40), TypedValue::i64(1LL << 20)}),
            1LL << 60);
}

TEST(Engine, FloatMinMaxNaNAndSignedZero) {
  ModuleBuilder mb;
  auto& fmin = mb.add_func(FuncType{{ValType::kF64, ValType::kF64}, {ValType::kF64}}, "min");
  fmin.local_get(0).local_get(1).op(Op::kF64Min).end();
  auto& fmax = mb.add_func(FuncType{{ValType::kF64, ValType::kF64}, {ValType::kF64}}, "max");
  fmax.local_get(0).local_get(1).op(Op::kF64Max).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);

  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(call_f64(*inst, "min", {TypedValue::f64(nan), TypedValue::f64(1.0)})));
  EXPECT_TRUE(std::isnan(call_f64(*inst, "max", {TypedValue::f64(2.0), TypedValue::f64(nan)})));
  // min(-0, +0) = -0 ; max(-0, +0) = +0.
  double mn = call_f64(*inst, "min", {TypedValue::f64(-0.0), TypedValue::f64(0.0)});
  EXPECT_TRUE(std::signbit(mn));
  double mx = call_f64(*inst, "max", {TypedValue::f64(-0.0), TypedValue::f64(0.0)});
  EXPECT_FALSE(std::signbit(mx));
}

TEST(Engine, NearestRoundsHalfToEven) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kF64}, {ValType::kF64}}, "f");
  f.local_get(0).op(Op::kF64Nearest).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f", {TypedValue::f64(2.5)}), 2.0);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f", {TypedValue::f64(3.5)}), 4.0);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f", {TypedValue::f64(-0.5)}), -0.0);
}

TEST(Engine, TruncTrapsOutOfRange) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kF64}, {ValType::kI32}}, "f");
  f.local_get(0).op(Op::kI32TruncF64S).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::f64(-3.7)}), -3);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::f64(2147483647.0)}), 2147483647);
  auto err = call_expect_trap(*inst, "f", {TypedValue::f64(2147483648.0)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
  err = call_expect_trap(*inst, "f", {TypedValue::f64(std::nan(""))});
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

TEST(Engine, TruncSatClampsAndZerosNaN) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kF64}, {ValType::kI32}}, "f");
  f.local_get(0).op(Op::kI32TruncSatF64S).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::f64(1e300)}),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::f64(-1e300)}),
            std::numeric_limits<int32_t>::min());
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::f64(std::nan(""))}), 0);
}

TEST(Engine, SignExtensionOps) {
  auto mb = unary_i32_module("f", [](FunctionBuilder& f) {
    f.local_get(0).op(Op::kI32Extend8S);
  });
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0x80)}), -128);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0x7f)}), 127);
}

TEST(Engine, ReinterpretRoundTrip) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kF32}, {ValType::kI32}}, "bits");
  f.local_get(0).op(Op::kI32ReinterpretF32).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "bits", {TypedValue::f32(1.0f)}), 0x3f800000);
}

// --- Control flow. ---

TEST(Engine, IfElse) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).if_(BlockT::i32());
  f.i32_const(10);
  f.else_();
  f.i32_const(20);
  f.end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(1)}), 10);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 20);
}

TEST(Engine, IfWithoutElse) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  uint32_t acc = f.add_local(ValType::kI32);
  f.i32_const(1).local_set(acc);
  f.local_get(0).if_();
  f.i32_const(99).local_set(acc);
  f.end();
  f.local_get(acc).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(1)}), 99);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 1);
}

// Loop: sum 1..n via br_if backedge.
TEST(Engine, LoopSum) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "sum");
  uint32_t i = f.add_local(ValType::kI32);
  uint32_t acc = f.add_local(ValType::kI32);
  f.block();            // depth 1 (exit)
  f.loop();             // depth 0 (backedge)
  // if i >= n break
  f.local_get(i).local_get(0).op(Op::kI32GeS).br_if(1);
  // i += 1; acc += i
  f.local_get(i).i32_const(1).op(Op::kI32Add).local_tee(i);
  f.local_get(acc).op(Op::kI32Add).local_set(acc);
  f.br(0);
  f.end().end();
  f.local_get(acc).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "sum", {TypedValue::i32(10)}), 55);
  EXPECT_EQ(call_i32(*inst, "sum", {TypedValue::i32(0)}), 0);
  EXPECT_EQ(call_i32(*inst, "sum", {TypedValue::i32(1000)}), 500500);
}

TEST(Engine, BlockWithResultAndBr) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.block(BlockT::i32());
  f.i32_const(5);
  f.local_get(0).br_if(0);
  f.op(Op::kDrop).i32_const(7);
  f.end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(1)}), 5);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 7);
}

TEST(Engine, BrTable) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.block().block().block();                 // depths 2,1,0
  f.local_get(0).br_table({0, 1}, 2);
  f.end();  // inner: case 0
  f.i32_const(100).ret();
  f.end();  // middle: case 1
  f.i32_const(200).ret();
  f.end();  // outer: default
  f.i32_const(300).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 100);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(1)}), 200);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(2)}), 300);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(-1)}), 300);  // unsigned index
}

TEST(Engine, EarlyReturn) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).if_();
  f.i32_const(11).ret();
  f.end();
  f.i32_const(22).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(1)}), 11);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(0)}), 22);
}

TEST(Engine, Select) {
  ModuleBuilder mb;
  auto& f = mb.add_func(
      FuncType{{ValType::kI32, ValType::kI32, ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).local_get(1).local_get(2).op(Op::kSelect).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f",
                     {TypedValue::i32(5), TypedValue::i32(9), TypedValue::i32(1)}),
            5);
  EXPECT_EQ(call_i32(*inst, "f",
                     {TypedValue::i32(5), TypedValue::i32(9), TypedValue::i32(0)}),
            9);
}

// --- Calls. ---

TEST(Engine, DirectCallAndRecursion) {
  ModuleBuilder mb;
  // fib(n) recursive.
  auto& fib = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "fib");
  fib.local_get(0).i32_const(2).op(Op::kI32LtS).if_(BlockT::i32());
  fib.local_get(0);
  fib.else_();
  fib.local_get(0).i32_const(1).op(Op::kI32Sub).call(fib.index());
  fib.local_get(0).i32_const(2).op(Op::kI32Sub).call(fib.index());
  fib.op(Op::kI32Add);
  fib.end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "fib", {TypedValue::i32(10)}), 55);
  EXPECT_EQ(call_i32(*inst, "fib", {TypedValue::i32(20)}), 6765);
}

TEST(Engine, InfiniteRecursionTrapsOnDepth) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.call(0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto err = call_expect_trap(*inst, "f");
  EXPECT_EQ(err.code, Error::Code::kTrap);
  EXPECT_NE(err.message.find("call stack"), std::string::npos);
}

TEST(Engine, CallIndirect) {
  ModuleBuilder mb;
  FuncType binop{{ValType::kI32, ValType::kI32}, {ValType::kI32}};
  auto& add = mb.add_func(binop);
  add.local_get(0).local_get(1).op(Op::kI32Add).end();
  auto& sub = mb.add_func(binop);
  sub.local_get(0).local_get(1).op(Op::kI32Sub).end();
  mb.add_table(2, 2);
  mb.add_elem(0, {add.index(), sub.index()});
  uint32_t binop_type = mb.add_type(binop);
  auto& dispatch = mb.add_func(
      FuncType{{ValType::kI32, ValType::kI32, ValType::kI32}, {ValType::kI32}}, "dispatch");
  dispatch.local_get(1).local_get(2).local_get(0).call_indirect(binop_type).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "dispatch",
                     {TypedValue::i32(0), TypedValue::i32(9), TypedValue::i32(4)}),
            13);
  EXPECT_EQ(call_i32(*inst, "dispatch",
                     {TypedValue::i32(1), TypedValue::i32(9), TypedValue::i32(4)}),
            5);
  // Out-of-bounds table index traps.
  auto err = call_expect_trap(
      *inst, "dispatch", {TypedValue::i32(7), TypedValue::i32(1), TypedValue::i32(1)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

TEST(Engine, CallIndirectSignatureMismatchTraps) {
  ModuleBuilder mb;
  auto& noargs = mb.add_func(FuncType{{}, {ValType::kI32}});
  noargs.i32_const(1).end();
  mb.add_table(1, 1);
  mb.add_elem(0, {noargs.index()});
  FuncType other{{ValType::kI32}, {ValType::kI32}};
  uint32_t other_type = mb.add_type(other);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(5).i32_const(0).call_indirect(other_type).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto err = call_expect_trap(*inst, "f");
  EXPECT_NE(err.message.find("signature"), std::string::npos);
}

TEST(Engine, UninitializedTableElementTraps) {
  ModuleBuilder mb;
  FuncType sig{{}, {ValType::kI32}};
  auto& g = mb.add_func(sig);
  g.i32_const(3).end();
  mb.add_table(4, 4);
  mb.add_elem(0, {g.index()});  // slots 1..3 remain null
  uint32_t t = mb.add_type(sig);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(2).call_indirect(t).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto err = call_expect_trap(*inst, "f");
  EXPECT_NE(err.message.find("uninitialized"), std::string::npos);
}

// --- Memory. ---

TEST(Engine, MemoryLoadStore) {
  ModuleBuilder mb;
  mb.add_memory(1, 1, "memory");
  auto& st = mb.add_func(FuncType{{ValType::kI32, ValType::kI32}, {}}, "poke");
  st.local_get(0).local_get(1).store(Op::kI32Store, 0, 2).end();
  auto& ld = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek");
  ld.local_get(0).load(Op::kI32Load, 0, 2).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto r = inst->call("poke", std::vector<TypedValue>{TypedValue::i32(64), TypedValue::i32(-123)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(call_i32(*inst, "peek", {TypedValue::i32(64)}), -123);
}

TEST(Engine, MemoryOutOfBoundsTraps) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& ld = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek");
  ld.local_get(0).load(Op::kI32Load, 0, 2).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  // Last valid word is at 65532.
  EXPECT_EQ(call_i32(*inst, "peek", {TypedValue::i32(65532)}), 0);
  auto err = call_expect_trap(*inst, "peek", {TypedValue::i32(65533)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
  EXPECT_NE(err.message.find("out-of-bounds"), std::string::npos);
  // Negative base is a huge unsigned address.
  err = call_expect_trap(*inst, "peek", {TypedValue::i32(-4)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

TEST(Engine, LoadOffsetOverflowTraps) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& ld = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek");
  ld.local_get(0).load(Op::kI32Load, 0xffffffff, 0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  // base + offset overflows 32 bits; must trap, not wrap.
  auto err = call_expect_trap(*inst, "peek", {TypedValue::i32(8)});
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

TEST(Engine, MemoryGrowAndSize) {
  ModuleBuilder mb;
  mb.add_memory(1, 3);
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "grow");
  f.local_get(0).memory_grow().end();
  auto& sz = mb.add_func(FuncType{{}, {ValType::kI32}}, "size");
  sz.memory_size().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "size"), 1);
  EXPECT_EQ(call_i32(*inst, "grow", {TypedValue::i32(2)}), 1);  // old size
  EXPECT_EQ(call_i32(*inst, "size"), 3);
  // Beyond max: returns -1, no trap.
  EXPECT_EQ(call_i32(*inst, "grow", {TypedValue::i32(1)}), -1);
}

TEST(Engine, BulkMemoryFillAndCopy) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& fill = mb.add_func(FuncType{{}, {}}, "fill");
  fill.i32_const(16).i32_const(0xaa).i32_const(8).memory_fill().end();
  auto& copy = mb.add_func(FuncType{{}, {}}, "copy");
  copy.i32_const(100).i32_const(16).i32_const(8).memory_copy().end();
  auto& peek = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek8");
  peek.local_get(0).load(Op::kI32Load8U, 0, 0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  ASSERT_TRUE(inst->call("fill", std::vector<TypedValue>{}).ok());
  ASSERT_TRUE(inst->call("copy", std::vector<TypedValue>{}).ok());
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(100)}), 0xaa);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(107)}), 0xaa);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(108)}), 0);
}

TEST(Engine, DataSegmentInitializesMemory) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  const uint8_t payload[] = {1, 2, 3, 4};
  mb.add_data(10, payload);
  auto& peek = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "peek8");
  peek.local_get(0).load(Op::kI32Load8U, 0, 0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(10)}), 1);
  EXPECT_EQ(call_i32(*inst, "peek8", {TypedValue::i32(13)}), 4);
}

TEST(Engine, SubWordLoadsSignAndZeroExtend) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  const uint8_t payload[] = {0xff, 0x80};
  mb.add_data(0, payload);
  auto& s8 = mb.add_func(FuncType{{}, {ValType::kI32}}, "s8");
  s8.i32_const(0).load(Op::kI32Load8S, 0, 0).end();
  auto& u8f = mb.add_func(FuncType{{}, {ValType::kI32}}, "u8");
  u8f.i32_const(0).load(Op::kI32Load8U, 0, 0).end();
  auto& s16 = mb.add_func(FuncType{{}, {ValType::kI32}}, "s16");
  s16.i32_const(0).load(Op::kI32Load16S, 0, 1).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "s8"), -1);
  EXPECT_EQ(call_i32(*inst, "u8"), 255);
  EXPECT_EQ(call_i32(*inst, "s16"), static_cast<int16_t>(0x80ff));
}

// --- Globals. ---

TEST(Engine, MutableGlobalCounter) {
  ModuleBuilder mb;
  uint32_t g = mb.add_global(ValType::kI32, true, wasm::Value::from_i32(100));
  auto& bump = mb.add_func(FuncType{{}, {ValType::kI32}}, "bump");
  bump.global_get(g).i32_const(1).op(Op::kI32Add).global_set(g);
  bump.global_get(g).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "bump"), 101);
  EXPECT_EQ(call_i32(*inst, "bump"), 102);
}

// --- Traps and safety. ---

TEST(Engine, UnreachableTraps) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.op(Op::kUnreachable).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto err = call_expect_trap(*inst, "f");
  EXPECT_EQ(err.code, Error::Code::kTrap);
}

TEST(Engine, HostSurvivesRepeatedTraps) {
  // The instance stays usable after a trap — the property behind the
  // paper's "gNB catches the exception and continues running".
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto& bad = mb.add_func(FuncType{{}, {ValType::kI32}}, "bad");
  bad.i32_const(-1).load(Op::kI32Load, 0, 2).end();
  auto& good = mb.add_func(FuncType{{}, {ValType::kI32}}, "good");
  good.i32_const(7).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  for (int i = 0; i < 10; ++i) {
    auto err = call_expect_trap(*inst, "bad");
    EXPECT_EQ(err.code, Error::Code::kTrap);
    EXPECT_EQ(call_i32(*inst, "good"), 7);
  }
}

// --- Fuel metering. ---

TEST(Engine, FuelExhaustionStopsInfiniteLoop) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {}}, "spin");
  f.loop().br(0).end().end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  inst->set_fuel(10000);
  auto r = inst->call("spin", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kFuelExhausted);
  EXPECT_EQ(inst->fuel(), 0u);
}

TEST(Engine, FuelAccountingIsPerInstruction) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(1).i32_const(2).op(Op::kI32Add).end();  // 4 instructions incl. end
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  inst->set_fuel(100);
  EXPECT_EQ(call_i32(*inst, "f"), 3);
  EXPECT_EQ(inst->fuel(), 96u);
  EXPECT_EQ(inst->instructions_retired(), 4u);
}

TEST(Engine, ExactFuelSucceedsOneLessTraps) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(1).i32_const(2).op(Op::kI32Add).end();
  {
    auto inst = instantiate(mb);
    inst->set_fuel(4);
    EXPECT_EQ(call_i32(*inst, "f"), 3);
  }
  {
    auto inst = instantiate(mb);
    inst->set_fuel(3);
    auto r = inst->call("f", std::vector<TypedValue>{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Error::Code::kFuelExhausted);
  }
}

// --- Host functions. ---

TEST(Engine, HostFunctionCall) {
  ModuleBuilder mb;
  uint32_t host_add = mb.import_func("env", "add",
                                     FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}});
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).i32_const(100).call(host_add).end();

  wasm::Linker linker;
  int call_count = 0;
  linker.register_func("env", "add",
                       wasm::HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}},
                                      [&](wasm::HostContext&, std::span<const wasm::Value> args)
                                          -> Result<std::optional<wasm::Value>> {
                                        ++call_count;
                                        return std::optional<wasm::Value>(wasm::Value::from_i32(
                                            args[0].as_i32() + args[1].as_i32()));
                                      }});
  auto inst = instantiate(mb, linker);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f", {TypedValue::i32(5)}), 105);
  EXPECT_EQ(call_count, 1);
}

TEST(Engine, HostFunctionCanReadGuestMemory) {
  ModuleBuilder mb;
  uint32_t host_sum = mb.import_func("env", "sum_bytes",
                                     FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}});
  mb.add_memory(1, 1);
  const uint8_t payload[] = {10, 20, 30};
  mb.add_data(8, payload);
  auto& f = mb.add_func(FuncType{{}, {ValType::kI32}}, "f");
  f.i32_const(8).i32_const(3).call(host_sum).end();

  wasm::Linker linker;
  linker.register_func(
      "env", "sum_bytes",
      wasm::HostFunc{FuncType{{ValType::kI32, ValType::kI32}, {ValType::kI32}},
                     [](wasm::HostContext& ctx, std::span<const wasm::Value> args)
                         -> Result<std::optional<wasm::Value>> {
                       std::vector<uint8_t> buf(args[1].as_u32());
                       auto st = ctx.instance.memory()->read_bytes(args[0].as_u32(), buf);
                       if (!st.ok()) return st.error();
                       int sum = 0;
                       for (uint8_t b : buf) sum += b;
                       return std::optional<wasm::Value>(wasm::Value::from_i32(sum));
                     }});
  auto inst = instantiate(mb, linker);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "f"), 60);
}

TEST(Engine, HostTrapPropagates) {
  ModuleBuilder mb;
  uint32_t host_fail = mb.import_func("env", "fail", FuncType{{}, {}});
  auto& f = mb.add_func(FuncType{{}, {}}, "f");
  f.call(host_fail).end();

  wasm::Linker linker;
  linker.register_func("env", "fail",
                       wasm::HostFunc{FuncType{{}, {}},
                                      [](wasm::HostContext&, std::span<const wasm::Value>)
                                          -> Result<std::optional<wasm::Value>> {
                                        return Error::trap("host says no");
                                      }});
  auto inst = instantiate(mb, linker);
  ASSERT_NE(inst, nullptr);
  auto err = call_expect_trap(*inst, "f");
  EXPECT_NE(err.message.find("host says no"), std::string::npos);
}

TEST(Engine, UnresolvedImportFailsInstantiation) {
  ModuleBuilder mb;
  mb.import_func("env", "missing", FuncType{{}, {}});
  mb.add_func(FuncType{{}, {}}, "f").end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(wasm::validate_module(*module).ok());
  wasm::Linker empty;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), empty);
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.error().code, Error::Code::kNotFound);
}

TEST(Engine, ImportSignatureMismatchFailsInstantiation) {
  ModuleBuilder mb;
  mb.import_func("env", "f", FuncType{{ValType::kI32}, {}});
  mb.add_func(FuncType{{}, {}}, "g").end();
  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  ASSERT_TRUE(module.ok());
  wasm::Linker linker;
  linker.register_func("env", "f",
                       wasm::HostFunc{FuncType{{ValType::kI64}, {}},
                                      [](wasm::HostContext&, std::span<const wasm::Value>)
                                          -> Result<std::optional<wasm::Value>> {
                                        return std::optional<wasm::Value>{};
                                      }});
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.error().code, Error::Code::kValidation);
}

// --- Start function & exports. ---

TEST(Engine, StartFunctionRunsAtInstantiation) {
  ModuleBuilder mb;
  uint32_t g = mb.add_global(ValType::kI32, true, wasm::Value::from_i32(0));
  auto& init = mb.add_func(FuncType{{}, {}});
  init.i32_const(77).global_set(g).end();
  mb.set_start(init.index());
  auto& get = mb.add_func(FuncType{{}, {ValType::kI32}}, "get");
  get.global_get(g).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "get"), 77);
}

TEST(Engine, MissingExportIsNotFound) {
  ModuleBuilder mb;
  mb.add_func(FuncType{{}, {}}, "f").end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto r = inst->call("nope", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kNotFound);
}

TEST(Engine, ArgumentTypeMismatchRejected) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "f");
  f.local_get(0).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  auto r = inst->call("f", std::vector<TypedValue>{TypedValue::f64(1.0)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kInvalidArgument);
  r = inst->call("f", std::vector<TypedValue>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kInvalidArgument);
}

// --- Conversions round-trip sweep (parameterized). ---

class ConvertRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(ConvertRoundTrip, I64ToF64AndBack) {
  ModuleBuilder mb;
  auto& f = mb.add_func(FuncType{{ValType::kI64}, {ValType::kI64}}, "f");
  f.local_get(0).op(Op::kF64ConvertI64S).op(Op::kI64TruncF64S).end();
  auto inst = instantiate(mb);
  ASSERT_NE(inst, nullptr);
  int64_t v = GetParam();
  EXPECT_EQ(call_i64(*inst, "f", {TypedValue::i64(v)}), v);
}

INSTANTIATE_TEST_SUITE_P(SafeIntegers, ConvertRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -1000000, (1LL << 52),
                                           -(1LL << 52), 123456789012345LL));

}  // namespace
}  // namespace waran
