// WAT assembler tests: hand-written text modules, error paths, and the
// crown jewel — the full disassemble -> assemble -> disassemble fixpoint
// plus execution equivalence over the real plugin corpus.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "plugin/plugin.h"
#include "ric/plugin_sources.h"
#include "sched/plugins.h"
#include "tests/wasm_test_util.h"
#include "wasm/disasm.h"
#include "wasmbuilder/wat.h"

namespace waran {
namespace {

using namespace wasmtest;

std::unique_ptr<wasm::Instance> instantiate_wat(const char* text) {
  auto bytes = wasmbuilder::assemble_wat(text);
  EXPECT_TRUE(bytes.ok()) << (bytes.ok() ? "" : bytes.error().message);
  if (!bytes.ok()) return nullptr;
  auto module = wasm::decode_module(*bytes);
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().message);
  if (!module.ok()) return nullptr;
  auto st = wasm::validate_module(*module);
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
  if (!st.ok()) return nullptr;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), {});
  EXPECT_TRUE(inst.ok());
  return inst.ok() ? std::move(*inst) : nullptr;
}

TEST(Wat, EmptyModule) {
  auto bytes = wasmbuilder::assemble_wat("(module)");
  ASSERT_TRUE(bytes.ok()) << bytes.error().message;
  EXPECT_TRUE(wasm::decode_module(*bytes).ok());
}

TEST(Wat, HandWrittenFunction) {
  auto inst = instantiate_wat(R"((module
    (func $0 (param i32 i32) (result i32)
      local.get 0
      local.get 1
      i32.add
    )
    (export "add" (func 0))
  ))");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "add", {TypedValue::i32(30), TypedValue::i32(12)}), 42);
}

TEST(Wat, ControlFlowAndLocals) {
  auto inst = instantiate_wat(R"((module
    (export "sum" (func 0))
    (func $0 (param i32) (result i32)
      (local i32 i32)
      block
        loop
          local.get 1
          local.get 0
          i32.ge_s
          br_if 1
          local.get 1
          i32.const 1
          i32.add
          local.tee 1
          local.get 2
          i32.add
          local.set 2
          br 0
        end
      end
      local.get 2
    )
  ))");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "sum", {TypedValue::i32(10)}), 55);
}

TEST(Wat, MemoryGlobalsDataAndMemarg) {
  auto inst = instantiate_wat(R"((module
    (memory 1 2)
    (global 0 (mut i32) (i32.const 7))
    (export "peek" (func 0))
    (data (i32.const 8) "\01\02\ff")
    (func $0 (result i32)
      i32.const 0
      i32.load8_u offset=10 align=1
      global.get 0
      i32.add
    )
  ))");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "peek"), 0xff + 7);
}

TEST(Wat, TableElemCallIndirect) {
  auto inst = instantiate_wat(R"((module
    (type 0 (func (result i32)))
    (table 2 2 funcref)
    (elem (i32.const 0) 0 1)
    (export "pick" (func 2))
    (func $0 (result i32) i32.const 100)
    (func $1 (result i32) i32.const 200)
    (func $2 (param i32) (result i32)
      local.get 0
      call_indirect (type 0)
    )
  ))");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(call_i32(*inst, "pick", {TypedValue::i32(0)}), 100);
  EXPECT_EQ(call_i32(*inst, "pick", {TypedValue::i32(1)}), 200);
}

TEST(Wat, FloatConstsIncludingSpecials) {
  auto inst = instantiate_wat(R"((module
    (export "f" (func 0))
    (func $0 (result f64)
      f64.const 2.5
      f64.const -0.5
      f64.mul
    )
  ))");
  ASSERT_NE(inst, nullptr);
  EXPECT_DOUBLE_EQ(call_f64(*inst, "f"), -1.25);
}

TEST(WatErrors, Diagnostics) {
  EXPECT_FALSE(wasmbuilder::assemble_wat("").ok());
  EXPECT_FALSE(wasmbuilder::assemble_wat("(module").ok());
  EXPECT_FALSE(wasmbuilder::assemble_wat("(module (bogus))").ok());
  EXPECT_FALSE(wasmbuilder::assemble_wat(
                   "(module (func $0 i32.frobnicate))").ok());
  EXPECT_FALSE(wasmbuilder::assemble_wat(
                   "(module (func $0 i32.const zzz))").ok());
  EXPECT_FALSE(wasmbuilder::assemble_wat(
                   "(module (func $0) (import \"a\" \"b\" (func)))").ok());
}

// --- The round trip: binary -> text -> binary over the whole corpus. ---

void assert_round_trip(std::span<const uint8_t> original, const char* label) {
  auto module1 = wasm::decode_module(original);
  ASSERT_TRUE(module1.ok()) << label;
  std::string text1 = wasm::disassemble(*module1);

  auto reassembled = wasmbuilder::assemble_wat(text1);
  ASSERT_TRUE(reassembled.ok()) << label << ": " << reassembled.error().message
                                << "\n" << text1;
  auto module2 = wasm::decode_module(*reassembled);
  ASSERT_TRUE(module2.ok()) << label;
  ASSERT_TRUE(wasm::validate_module(*module2).ok()) << label;

  // Textual fixpoint: disassembling the reassembled module reproduces the
  // exact same listing.
  EXPECT_EQ(wasm::disassemble(*module2), text1) << label;
}

TEST(WatRoundTrip, SchedulerPlugins) {
  for (const char* kind : {"rr", "pf", "mt"}) {
    auto bytes = sched::plugins::scheduler(kind);
    ASSERT_TRUE(bytes.ok());
    assert_round_trip(*bytes, kind);
  }
}

TEST(WatRoundTrip, RicPluginCorpus) {
  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch_v2();
  auto sla = ric::plugin_sources::sla_xapp();
  auto steer = ric::plugin_sources::steer_xapp();
  ASSERT_TRUE(comm.ok() && ctl.ok() && sla.ok() && steer.ok());
  assert_round_trip(*comm, "comm");
  assert_round_trip(*ctl, "ctl-v2");
  assert_round_trip(*sla, "sla");
  assert_round_trip(*steer, "steer");
}

TEST(WatRoundTrip, ReassembledPluginBehavesIdentically) {
  auto original = sched::plugins::scheduler("pf");
  ASSERT_TRUE(original.ok());
  auto module = wasm::decode_module(*original);
  ASSERT_TRUE(module.ok());
  auto reassembled = wasmbuilder::assemble_wat(wasm::disassemble(*module));
  ASSERT_TRUE(reassembled.ok());

  auto p1 = plugin::Plugin::load(*original);
  auto p2 = plugin::Plugin::load(*reassembled);
  ASSERT_TRUE(p1.ok() && p2.ok());

  // Identical outputs on identical inputs (a few structured requests in the
  // flat wire format: header + UE records).
  Xoshiro256 rng(31337);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint8_t> input(12 + 5 * 40, 0);
    input[0] = static_cast<uint8_t>(round);  // slot
    input[4] = 52;                           // quota
    input[8] = 5;                            // n_ues
    for (size_t i = 12; i < input.size(); ++i) {
      input[i] = static_cast<uint8_t>(rng.next());
    }
    auto o1 = (*p1)->call("schedule", input);
    auto o2 = (*p2)->call("schedule", input);
    ASSERT_EQ(o1.ok(), o2.ok());
    if (o1.ok()) {
      EXPECT_EQ(*o1, *o2);
    }
  }
}

TEST(WatRoundTrip, BuilderFeaturesModule) {
  // A module exercising every section the disassembler prints.
  ModuleBuilder mb;
  mb.import_func("env", "h", FuncType{{ValType::kF64}, {ValType::kF64}});
  mb.add_memory(1, 4, "memory");
  mb.add_global(ValType::kF64, true, wasm::Value::from_f64(3.25));
  mb.add_global(ValType::kI64, false, wasm::Value::from_i64(-9));
  FuncType sig{{ValType::kI32}, {ValType::kI32}};
  auto& f = mb.add_func(sig, "f");
  uint32_t tmp = f.add_local(ValType::kI64);
  f.local_get(0).if_(BlockT::i32());
  f.i32_const(1);
  f.else_();
  f.i32_const(-2);
  f.end();
  f.i64_const(5).local_set(tmp);
  f.end();
  mb.add_table(1, 1);
  mb.add_elem(0, {f.index()});
  const uint8_t data[] = {0xde, 0xad};
  mb.add_data(100, data);
  auto bytes = mb.build();
  assert_round_trip(bytes, "builder-features");
}

}  // namespace
}  // namespace waran
