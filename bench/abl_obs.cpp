// Ablation — observability overhead: what does waran::obs cost on the
// metered dispatch path? The contract (src/obs/trace.h) is that disabled
// tracing adds one relaxed load + branch per span site: no clock reads, no
// ring writes, no heap allocations. That is asserted here structurally —
// real operator-new counts via heap_probe plus the ring's write counter —
// so a regression aborts the bench instead of hiding in timing noise. The
// timed arms then report the enabled-mode cost (clock reads + 56-byte ring
// stores per span) and the raw instrument costs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/tracked_alloc.h"
#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/deployment.h"
#include "tests/heap_probe_guard.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;
using bench::instantiate_w;
using wasm::TypedValue;

// A scheduler-shaped workload: a compute loop plus ABI host calls, so both
// instrumented crossings (Instance::call span, host trampoline spans) sit
// on the measured path.
constexpr const char* kWorkload = R"(
  export fn work(n: i32) -> i32 {
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < n) {
      if (i % 3 == 0) { acc = acc + i * 7; } else { acc = acc - i / 3; }
      store32((i % 64) * 4, acc);
      i = i + 1;
    }
    output_write(0, 64);
    return acc;
  }
)";

wasm::Linker abi_stub_linker() {
  // Just enough of the plugin ABI for the workload: a no-op output_write,
  // so the host-trampoline span site is on the path without dragging the
  // full PluginManager in.
  wasm::Linker linker;
  linker.register_func(
      "waran", "output_write",
      wasm::HostFunc{wasm::FuncType{{wasm::ValType::kI32, wasm::ValType::kI32}, {}},
                     [](wasm::HostContext&, std::span<const wasm::Value>)
                         -> Result<std::optional<wasm::Value>> {
                       return std::optional<wasm::Value>{};
                     }});
  return linker;
}

void BM_TracedDispatch(benchmark::State& state) {
  auto inst = instantiate_w(kWorkload, abi_stub_linker());
  const bool traced = state.range(1) != 0;
  wasm::CallOptions opts;
  opts.fuel = uint64_t{1} << 40;
  wasm::CallStats stats;
  std::vector<TypedValue> args =
      {TypedValue::i32(static_cast<int32_t>(state.range(0)))};

  obs::TraceRing& ring = obs::TraceRing::instance();
  if (traced) {
    ring.enable(1 << 14);
  } else {
    ring.disable();
  }

  // Warm up, then assert the disabled-mode contract: across 64 warm calls
  // the obs layer must make ZERO heap allocations and ZERO ring writes.
  for (int i = 0; i < 4; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  const uint64_t allocs_before = heap_probe::allocations();
  const uint64_t writes_before = ring.writes();
  for (int i = 0; i < 64; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  const uint64_t warm_allocs = heap_probe::allocations() - allocs_before;
  const uint64_t warm_writes = ring.writes() - writes_before;
  if (warm_allocs != 0) {
    std::fprintf(stderr,
                 "zero-alloc guarantee broken: %llu heap allocations across "
                 "64 warm calls (traced=%d)\n",
                 static_cast<unsigned long long>(warm_allocs), traced ? 1 : 0);
    std::abort();
  }
  if (!traced && warm_writes != 0) {
    std::fprintf(stderr,
                 "disabled tracing wrote %llu ring events across 64 warm "
                 "calls — the off path must be inert\n",
                 static_cast<unsigned long long>(warm_writes));
    std::abort();
  }
  if (traced && warm_writes == 0) {
    std::fprintf(stderr, "enabled tracing recorded nothing — spans are dead\n");
    std::abort();
  }

  for (auto _ : state) {
    auto r = inst->call("work", args, opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  ring.disable();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stats.instrs_retired));
  state.counters["warm_heap_allocs"] = static_cast<double>(warm_allocs);
  state.counters["warm_ring_writes"] = static_cast<double>(warm_writes);
}

void BM_SpanDisabled(benchmark::State& state) {
  // Floor cost of one span site with tracing off: a relaxed load + branch
  // on construction and another on destruction.
  obs::TraceRing::instance().disable();
  for (auto _ : state) {
    obs::ObsSpan span(obs::TraceCat::kOther, "bench");
    benchmark::DoNotOptimize(&span);
  }
}

void BM_SpanEnabled(benchmark::State& state) {
  // Full span cost with tracing on: two clock reads + one ring store.
  obs::TraceRing::instance().enable(1 << 14);
  for (auto _ : state) {
    obs::ObsSpan span(obs::TraceCat::kOther, "bench");
    benchmark::DoNotOptimize(&span);
  }
  obs::TraceRing::instance().disable();
}

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c =
      obs::MetricsRegistry::global().counter("waran_bench_counter_total");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}

void BM_HistogramAdd(benchmark::State& state) {
  obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("waran_bench_hist_ns");
  uint64_t v = 1;
  for (auto _ : state) {
    h.add(v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 8;  // vary the bucket
  }
  benchmark::DoNotOptimize(h.count());
}

void BM_FleetCollect(benchmark::State& state) {
  // The fleet aggregation warm path: per-cell collection (what rides every
  // E2 indication) plus the gNB/fleet rollup. The contract mirrors the span
  // sites above — handles resolve at construction, so the warm path makes
  // ZERO heap allocations; a regression aborts the bench.
  rt::DeploymentConfig cfg;
  cfg.cells = 2;
  cfg.seed = 42;
  cfg.threaded = false;  // inline: the bench thread owns every shard
  cfg.virtual_time = true;
  cfg.report_period_slots = 10;
  rt::GnbDeployment dep(cfg);
  if (!dep.status().ok()) {
    state.SkipWithError(dep.status().error().message.c_str());
    return;
  }
  if (!dep.run_slots(30).ok()) {
    state.SkipWithError("deployment warm-up failed");
    return;
  }

  obs::FleetAggregator& fleet = dep.fleet();
  auto collect_all = [&fleet]() {
    for (size_t i = 0; i < fleet.cells(); ++i) {
      benchmark::DoNotOptimize(&fleet.collect_cell(i));
    }
    obs::CellTelemetry rollup = fleet.fleet_rollup();
    benchmark::DoNotOptimize(&rollup);
  };

  for (int i = 0; i < 4; ++i) collect_all();
  const uint64_t allocs_before = heap_probe::allocations();
  for (int i = 0; i < 64; ++i) collect_all();
  const uint64_t warm_allocs = heap_probe::allocations() - allocs_before;
  if (warm_allocs != 0) {
    std::fprintf(stderr,
                 "fleet aggregation zero-alloc guarantee broken: %llu heap "
                 "allocations across 64 warm collect+rollup passes\n",
                 static_cast<unsigned long long>(warm_allocs));
    std::abort();
  }

  for (auto _ : state) {
    collect_all();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // cells collected
  state.counters["warm_heap_allocs"] = static_cast<double>(warm_allocs);
}

BENCHMARK(BM_TracedDispatch)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->ArgNames({"n", "traced"});
BENCHMARK(BM_SpanDisabled);
BENCHMARK(BM_SpanEnabled);
BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramAdd);
BENCHMARK(BM_FleetCollect);

}  // namespace
