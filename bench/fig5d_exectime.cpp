// Figure 5d — Plugin execution time vs number of UEs.
//
// Paper setup (§5E): measure the end-to-end time of one intra-slice
// scheduling call through the Wasm plugin — including request/response
// serialization on the gNB host — for the MT / RR / PF plugins with 1, 10
// and 20 connected UEs, and report the 50th and 99th percentiles against
// the 1000 µs slot budget.
//
// Paper result: the 99th percentile stays far below the slot duration for
// every scheduler and UE count.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ran/phy_tables.h"

using namespace waran;

namespace {

codec::SchedRequest make_request(uint32_t slot, uint32_t n_ues, Xoshiro256& rng) {
  codec::SchedRequest req;
  req.slot = slot;
  req.prb_quota = 52;
  for (uint32_t i = 0; i < n_ues; ++i) {
    codec::UeInfo ue;
    ue.rnti = 0x4601 + i;
    ue.mcs = static_cast<uint32_t>(rng.range(0, 28));
    ue.cqi = ran::cqi_from_mcs(ue.mcs);
    ue.buffer_bytes = static_cast<uint32_t>(rng.range(1000, 1 << 20));
    ue.tbs_per_prb = ran::transport_block_bits(ue.mcs, 1);
    ue.avg_tput_bps = rng.uniform() * 3e7;
    ue.achievable_bps = ran::transport_block_bits(ue.mcs, 52) * 1000.0;
    req.ues.push_back(ue);
  }
  return req;
}

}  // namespace

int main() {
  constexpr uint32_t kUeCounts[] = {1, 10, 20};
  const char* kSchedulers[] = {"mt", "rr", "pf"};
  constexpr int kWarmup = 500;
  constexpr double kSlotUs = 1000.0;

  // CI's perf-smoke step shrinks the run with WARAN_FIG5D_SAMPLES; the
  // default matches the paper's 10000 calls per cell.
  int samples = 10000;
  if (const char* s = std::getenv("WARAN_FIG5D_SAMPLES")) {
    int v = std::atoi(s);
    if (v > 0) samples = v;
  }

  std::printf("# Fig 5d — Wasm plugin execution time (includes host-side\n");
  std::printf("# serialization/deserialization), %d calls per cell\n", samples);
  std::printf("%-6s %6s %12s %12s %12s %12s %10s\n", "sched", "UEs", "p50[us]",
              "p99[us]", "max[us]", "mean[us]", "<slot?");

  bool all_under_budget = true;
  std::map<std::string, double> report;
  for (const char* kind : kSchedulers) {
    for (uint32_t n_ues : kUeCounts) {
      plugin::PluginManager mgr;
      bench::install_sched_plugin(mgr, "s", kind);
      sched::WasmIntraScheduler sched(mgr, "s");
      Xoshiro256 rng(n_ues * 1337 + kind[0]);

      QuantileAcc acc;
      for (int i = 0; i < kWarmup + samples; ++i) {
        codec::SchedRequest req = make_request(static_cast<uint32_t>(i), n_ues, rng);
        double t0 = bench::now_us();
        auto resp = sched.schedule(req);
        double dt = bench::now_us() - t0;
        if (!resp.ok()) {
          std::fprintf(stderr, "FATAL: %s\n", resp.error().message.c_str());
          return 1;
        }
        if (i >= kWarmup) acc.add(dt);
      }
      bool under = acc.quantile(0.99) < kSlotUs;
      all_under_budget = all_under_budget && under;
      std::printf("%-6s %6u %12.1f %12.1f %12.1f %12.1f %10s\n", kind, n_ues,
                  acc.quantile(0.5), acc.quantile(0.99), acc.max(), acc.mean(),
                  under ? "yes" : "NO");
      const std::string cell =
          "fig5d." + std::string(kind) + ".ues" + std::to_string(n_ues);
      report[cell + ".p50_us"] = acc.quantile(0.5);
      report[cell + ".p99_us"] = acc.quantile(0.99);
    }
  }
  bench::bench_json_merge(report);
  std::printf("# slot duration: %.0f us — paper: 99%% of executions well below it\n",
              kSlotUs);
  std::printf("# real-time feasibility %s\n", all_under_budget ? "OK" : "DEGRADED");
  return all_under_budget ? 0 : 1;
}
