// Near-RT RIC blueprint harness (paper §4B / Fig. 4 — design contribution,
// no paper figure): measures the full WA-RAN control loop
//
//   gNB MAC state -> indication -> comm plugin (frame) -> transport ->
//   comm plugin (unframe) -> xApp plugins -> control -> frame -> transport
//   -> unframe -> control-dispatch plugin -> host functions -> gNB knobs
//
// Reports (1) closed-loop convergence of the SLA xApp driving a slice to
// its target, (2) round-trip latency percentiles through five sandbox
// crossings, and (3) the vendor interop shim's conversion throughput.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "ric/gnb_agent.h"
#include "ric/near_rt_ric.h"
#include "ric/plugin_sources.h"
#include "ric/quota_inter.h"
#include "sched/native.h"

using namespace waran;

int main() {
  ran::GnbMac mac(ran::MacConfig{});
  auto quotas = std::make_unique<ric::QuotaTableInterScheduler>();
  ric::QuotaTableInterScheduler* quota_table = quotas.get();
  mac.set_inter_scheduler(std::move(quotas));

  ran::SliceConfig slice;
  slice.slice_id = 1;
  slice.target_rate_bps = 12e6;
  mac.add_slice(slice, std::make_unique<sched::RrScheduler>());
  for (int i = 0; i < 4; ++i) {
    mac.add_ue(1, ran::Channel::pinned_mcs(26), ran::TrafficSource::full_buffer());
  }
  quota_table->set_quota(1, 2);  // start starved

  ric::Duplex link;
  ric::GnbAgent agent(0, mac, quota_table, link, ric::Duplex::Side::kA);
  ric::NearRtRic ric(link, ric::Duplex::Side::kB);

  auto comm = ric::plugin_sources::comm_framing();
  auto ctl = ric::plugin_sources::control_dispatch();
  auto sla = ric::plugin_sources::sla_xapp();
  auto steer = ric::plugin_sources::steer_xapp();
  if (!comm.ok() || !ctl.ok() || !sla.ok() || !steer.ok()) {
    std::fprintf(stderr, "FATAL: plugin compilation failed\n");
    return 1;
  }
  bench::check(agent.load_comm_plugin(*comm), "agent comm");
  bench::check(agent.load_control_plugin(*ctl), "agent ctl");
  bench::check(ric.load_comm_plugin(*comm), "ric comm");
  if (!ric.add_xapp("sla", *sla).ok() || !ric.add_xapp("steer", *steer).ok()) {
    std::fprintf(stderr, "FATAL: xApp registration failed\n");
    return 1;
  }

  std::printf("# RIC closed loop — SLA xApp steering a starved slice to 12 Mb/s\n");
  std::printf("%8s %12s %10s\n", "round", "rate[Mb/s]", "loop[us]");

  QuantileAcc loop_us;
  double final_rate = 0;
  for (int round = 1; round <= 60; ++round) {
    bench::check(mac.run_slots(100), "run_slots");
    double t0 = bench::now_us();
    bench::check(agent.send_indication(), "send_indication");
    bench::check(ric.poll(), "ric poll");
    bench::check(agent.poll(), "agent poll");
    double dt = bench::now_us() - t0;
    loop_us.add(dt);
    final_rate = mac.slice_rate_bps(1) / 1e6;
    if (round % 5 == 0) std::printf("%8d %12.2f %10.1f\n", round, final_rate, dt);
  }

  std::printf("\n# Control-loop latency through 5 sandbox crossings\n");
  std::printf("p50 %.1f us | p99 %.1f us | max %.1f us (near-RT budget: 10-1000 ms)\n",
              loop_us.quantile(0.5), loop_us.quantile(0.99), loop_us.max());

  bool converged = final_rate > 10.0 && final_rate < 16.0;
  std::printf("# SLA convergence %s: %.2f Mb/s vs 12 Mb/s target; quota updates: %llu\n",
              converged ? "OK" : "DEGRADED", final_rate,
              static_cast<unsigned long long>(agent.stats().quota_updates));

  // Vendor interop shim throughput (8-bit -> 12-bit CQI widening).
  plugin::PluginManager shim_mgr;
  auto widen = ric::plugin_sources::vendor_widen();
  bench::check(widen.ok() ? Status() : Status(widen.error()), "widen compile");
  bench::check(shim_mgr.install("widen", *widen), "widen install");
  std::vector<uint8_t> vendor_a(4 + 3 * 64);
  vendor_a[0] = 64;
  QuantileAcc widen_us;
  for (int i = 0; i < 2000; ++i) {
    double t0 = bench::now_us();
    auto out = shim_mgr.call("widen", "widen", vendor_a);
    widen_us.add(bench::now_us() - t0);
    if (!out.ok()) {
      std::fprintf(stderr, "FATAL: widen failed\n");
      return 1;
    }
  }
  std::printf("# interop shim: 64-UE CQI report widened in p50 %.1f us / p99 %.1f us\n",
              widen_us.quantile(0.5), widen_us.quantile(0.99));
  return converged ? 0 : 1;
}
