// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "plugin/manager.h"
#include "ran/mac.h"
#include "rt/clock.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace waran::bench {

/// Compiles W source and instantiates it (decode -> validate -> link),
/// aborting the bench on any failure.
inline std::unique_ptr<wasm::Instance> instantiate_w(
    const char* src, const wasm::Linker& linker = {},
    const wasm::InstanceOptions& options = {}) {
  auto bytes = wcc::compile(src);
  if (!bytes.ok()) std::abort();
  auto module = wasm::decode_module(*bytes);
  if (!module.ok()) std::abort();
  if (!wasm::validate_module(*module).ok()) std::abort();
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker, options);
  if (!inst.ok()) std::abort();
  return std::move(*inst);
}

inline double now_us() { return static_cast<double>(rt::now_ns()) / 1000.0; }

/// Installs the named scheduler plugin (rr/pf/mt) into `mgr` under `slot`,
/// aborting the bench on failure.
inline void install_sched_plugin(plugin::PluginManager& mgr, const std::string& slot,
                                 const std::string& kind) {
  auto bytes = sched::plugins::scheduler(kind);
  if (!bytes.ok()) {
    std::fprintf(stderr, "FATAL: compiling %s plugin: %s\n", kind.c_str(),
                 bytes.error().message.c_str());
    std::abort();
  }
  auto st = mgr.has(slot) ? mgr.swap(slot, *bytes) : mgr.install(slot, *bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: installing %s plugin: %s\n", kind.c_str(),
                 st.error().message.c_str());
    std::abort();
  }
}

inline void check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, st.error().message.c_str());
    std::abort();
  }
}

/// Path of the machine-readable benchmark report shared by the bench
/// binaries (CI uploads it as an artifact and gates perf regressions on it).
inline std::string bench_json_path() {
  const char* p = std::getenv("WARAN_BENCH_JSON");
  return (p != nullptr && *p != '\0') ? std::string(p)
                                      : std::string("BENCH_interp.json");
}

/// Merges `entries` into the flat `{"key": number}` JSON at
/// bench_json_path(). Read-merge-write (with a tolerant parser that skips
/// anything that is not a `"key": number` pair) so separate bench processes
/// — abl_engine for ns/op + instrs/s, fig5d for latency quantiles — can
/// accumulate into one report file.
///
/// Ownership contract: keys are namespaced `<producer>.<rest>` (first dot
/// segment = the bench binary), and a merge REPLACES every key under the
/// producers it writes rather than overlaying them. Plain overlay semantics
/// let a renamed or deleted benchmark leave its stale key in the accumulated
/// report forever, so the baseline gate kept "passing" on numbers no binary
/// produced any more; with prefix ownership a removed benchmark's key
/// disappears on the next run and the gate fails it as MISSING.
inline void bench_json_merge(const std::map<std::string, double>& entries) {
  const std::string path = bench_json_path();
  std::map<std::string, double> all;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      size_t i = 0;
      while ((i = text.find('"', i)) != std::string::npos) {
        const size_t key_end = text.find('"', i + 1);
        if (key_end == std::string::npos) break;
        const std::string key = text.substr(i + 1, key_end - i - 1);
        i = key_end + 1;
        const size_t colon = text.find(':', key_end);
        if (colon == std::string::npos) break;
        const char* start = text.c_str() + colon + 1;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        if (end != start) {
          all[key] = v;
          i = static_cast<size_t>(end - text.c_str());
        }
      }
    }
  }
  std::set<std::string> producers;
  for (const auto& [k, _] : entries) {
    producers.insert(k.substr(0, k.find('.')));
  }
  for (auto it = all.begin(); it != all.end();) {
    if (producers.contains(it->first.substr(0, it->first.find('.')))) {
      it = all.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [k, v] : entries) all[k] = v;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  size_t n = 0;
  for (const auto& [k, v] : all) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out << "  \"" << k << "\": " << buf << (++n < all.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

}  // namespace waran::bench
