// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "plugin/manager.h"
#include "ran/mac.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

namespace waran::bench {

inline double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Installs the named scheduler plugin (rr/pf/mt) into `mgr` under `slot`,
/// aborting the bench on failure.
inline void install_sched_plugin(plugin::PluginManager& mgr, const std::string& slot,
                                 const std::string& kind) {
  auto bytes = sched::plugins::scheduler(kind);
  if (!bytes.ok()) {
    std::fprintf(stderr, "FATAL: compiling %s plugin: %s\n", kind.c_str(),
                 bytes.error().message.c_str());
    std::abort();
  }
  auto st = mgr.has(slot) ? mgr.swap(slot, *bytes) : mgr.install(slot, *bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: installing %s plugin: %s\n", kind.c_str(),
                 st.error().message.c_str());
    std::abort();
  }
}

inline void check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, st.error().message.c_str());
    std::abort();
  }
}

}  // namespace waran::bench
