// Ablation — interpreter micro-costs: raw arithmetic throughput, memory
// streaming, wasm->wasm calls, call_indirect dispatch, and host-call
// round-trips. These bound what any WA-RAN plugin can do inside the slot
// budget and quantify where an AoT backend (§6C future work) would help.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/tracked_alloc.h"
#include "plugin/plugin.h"
#include "tests/heap_probe_guard.h"
#include "wasm/wasm.h"
#include "wasmbuilder/builder.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;
using bench::instantiate_w;
using wasm::TypedValue;

void BM_ArithmeticLoop(benchmark::State& state) {
  auto inst = instantiate_w(R"(
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) { acc = acc + i * 7 - i / 3; i = i + 1; }
      return acc;
    }
  )");
  int64_t n = state.range(0);
  std::vector<TypedValue> args = {TypedValue::i32(static_cast<int32_t>(n))};
  for (auto _ : state) {
    auto r = inst->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  // ~6 wasm instructions per iteration.
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_F64Loop(benchmark::State& state) {
  auto inst = instantiate_w(R"(
    export fn work(n: i32) -> f64 {
      var acc: f64 = 0.0;
      var i: i32 = 0;
      while (i < n) { acc = acc + sqrt(f64(i)) * 0.5; i = i + 1; }
      return acc;
    }
  )");
  int64_t n = state.range(0);
  std::vector<TypedValue> args = {TypedValue::i32(static_cast<int32_t>(n))};
  for (auto _ : state) {
    auto r = inst->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_MemoryStream(benchmark::State& state) {
  auto inst = instantiate_w(R"(
    export fn work(n: i32) -> i32 {
      var i: i32 = 0;
      var acc: i32 = 0;
      while (i < n) { store32(i * 4, i); acc = acc + load32(i * 4); i = i + 1; }
      return acc;
    }
  )");
  int64_t n = state.range(0);
  std::vector<TypedValue> args = {TypedValue::i32(static_cast<int32_t>(n))};
  for (auto _ : state) {
    auto r = inst->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}

void BM_WasmToWasmCall(benchmark::State& state) {
  auto inst = instantiate_w(R"(
    fn leaf(x: i32) -> i32 { return x + 1; }
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) { acc = leaf(acc); i = i + 1; }
      return acc;
    }
  )");
  std::vector<TypedValue> args = {TypedValue::i32(10000)};
  for (auto _ : state) {
    auto r = inst->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

void BM_HostCallRoundTrip(benchmark::State& state) {
  wasm::Linker linker;
  linker.register_func(
      "env", "bump",
      wasm::HostFunc{wasm::FuncType{{wasm::ValType::kI32}, {wasm::ValType::kI32}},
                     [](wasm::HostContext&, std::span<const wasm::Value> a)
                         -> Result<std::optional<wasm::Value>> {
                       return std::optional<wasm::Value>(
                           wasm::Value::from_i32(a[0].as_i32() + 1));
                     }});
  auto inst = instantiate_w(R"(
    extern fn bump(x: i32) -> i32;
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) { acc = bump(acc); i = i + 1; }
      return acc;
    }
  )",
                            linker);
  std::vector<TypedValue> args = {TypedValue::i32(10000)};
  for (auto _ : state) {
    auto r = inst->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

void BM_CallIndirect(benchmark::State& state) {
  using wasmbuilder::ModuleBuilder;
  using wasm::FuncType;
  using wasm::Op;
  using wasm::ValType;
  ModuleBuilder mb;
  FuncType unop{{ValType::kI32}, {ValType::kI32}};
  auto& inc = mb.add_func(unop);
  inc.local_get(0).i32_const(1).op(Op::kI32Add).end();
  mb.add_table(1, 1);
  mb.add_elem(0, {inc.index()});
  uint32_t t = mb.add_type(unop);
  auto& work = mb.add_func(FuncType{{ValType::kI32}, {ValType::kI32}}, "work");
  uint32_t acc = work.add_local(ValType::kI32);
  uint32_t i = work.add_local(ValType::kI32);
  work.block().loop();
  work.local_get(i).local_get(0).op(Op::kI32GeS).br_if(1);
  work.local_get(acc).i32_const(0).call_indirect(t).local_set(acc);
  work.local_get(i).i32_const(1).op(Op::kI32Add).local_set(i);
  work.br(0).end().end();
  work.local_get(acc).end();

  auto bytes = mb.build();
  auto module = wasm::decode_module(bytes);
  if (!module.ok() || !wasm::validate_module(*module).ok()) std::abort();
  wasm::Linker linker;
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  if (!inst.ok()) std::abort();

  std::vector<TypedValue> args = {TypedValue::i32(10000)};
  for (auto _ : state) {
    auto r = (*inst)->call("work", args);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

void BM_DispatchThroughput(benchmark::State& state) {
  // Core dispatch loop, metered vs unmetered. Under the old per-instruction
  // fuel model the metered arm paid a decrement+branch on every retired
  // instruction; with block-level (segment) charging both arms run the same
  // hot loop and the gap collapses to one charge per straight-line segment.
  // Also asserts the warm-call zero-allocation guarantee with real
  // operator-new counts (this TU overrides global new/delete into
  // heap_probe), so a regression aborts the bench rather than just skewing
  // the numbers.
  auto inst = instantiate_w(R"(
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) {
        if (i % 3 == 0) { acc = acc + i * 7; } else { acc = acc - i / 3; }
        i = i + 1;
      }
      return acc;
    }
  )");
  int64_t n = state.range(0);
  const bool metered = state.range(1) != 0;
  wasm::CallOptions opts;
  opts.fuel = metered ? uint64_t{1} << 40 : uint64_t{0};
  wasm::CallStats stats;
  std::vector<TypedValue> args = {TypedValue::i32(static_cast<int32_t>(n))};

  // Warm up, then assert zero heap traffic across repeated warm calls.
  for (int i = 0; i < 4; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  const uint64_t allocs_before = heap_probe::allocations();
  for (int i = 0; i < 64; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  const uint64_t warm_allocs = heap_probe::allocations() - allocs_before;
  if (warm_allocs != 0) {
    std::fprintf(stderr,
                 "zero-alloc guarantee broken: %llu heap allocations across "
                 "64 warm Instance::call invocations\n",
                 static_cast<unsigned long long>(warm_allocs));
    std::abort();
  }

  for (auto _ : state) {
    auto r = inst->call("work", args, opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stats.instrs_retired));
  state.counters["instrs_per_call"] = static_cast<double>(stats.instrs_retired);
  state.counters["fuel_per_call"] = static_cast<double>(stats.fuel_used);
  state.counters["warm_heap_allocs"] = static_cast<double>(warm_allocs);
}

void BM_DispatchThroughputSpecialized(benchmark::State& state) {
  // The same workload on the tier-2 backend (wasm/specialize.h): the warm-up
  // crosses the tier-up threshold, so the measured loop runs the specialized
  // stream — re-fused superinstructions, collapsed branch chains, merged
  // fuel segments with bit-identical accounting. The acceptance floor lives
  // in bench/baseline/BENCH_interp.json; fuel_per_call / instrs_per_call
  // counters must equal BM_DispatchThroughput's exactly.
  wasm::InstanceOptions iopt;
  iopt.dispatch = wasm::Dispatch::kSpecialized;
  iopt.tier_up_threshold = 8;
  auto inst = instantiate_w(R"(
    export fn work(n: i32) -> i32 {
      var acc: i32 = 0;
      var i: i32 = 0;
      while (i < n) {
        if (i % 3 == 0) { acc = acc + i * 7; } else { acc = acc - i / 3; }
        i = i + 1;
      }
      return acc;
    }
  )",
                            {}, iopt);
  int64_t n = state.range(0);
  const bool metered = state.range(1) != 0;
  wasm::CallOptions opts;
  opts.fuel = metered ? uint64_t{1} << 40 : uint64_t{0};
  wasm::CallStats stats;
  std::vector<TypedValue> args = {TypedValue::i32(static_cast<int32_t>(n))};

  // Warm past the threshold; tier-up (the one allocating step) happens here.
  for (int i = 0; i < 16; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  if (inst->tier_up_events() < 1) {
    std::fprintf(stderr, "tier-up never happened: threshold 8, 16 warm calls\n");
    std::abort();
  }
  const uint64_t allocs_before = heap_probe::allocations();
  for (int i = 0; i < 64; ++i) {
    if (!inst->call("work", args, opts, &stats).ok()) std::abort();
  }
  const uint64_t warm_allocs = heap_probe::allocations() - allocs_before;
  if (warm_allocs != 0) {
    std::fprintf(stderr,
                 "zero-alloc guarantee broken after tier-up: %llu heap "
                 "allocations across 64 warm Instance::call invocations\n",
                 static_cast<unsigned long long>(warm_allocs));
    std::abort();
  }

  for (auto _ : state) {
    auto r = inst->call("work", args, opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stats.instrs_retired));
  state.counters["instrs_per_call"] = static_cast<double>(stats.instrs_retired);
  state.counters["fuel_per_call"] = static_cast<double>(stats.fuel_used);
  state.counters["warm_heap_allocs"] = static_cast<double>(warm_allocs);
  state.counters["tier_up_events"] = static_cast<double>(inst->tier_up_events());
}

void BM_DecodeValidate(benchmark::State& state) {
  // Toolchain-side cost: how long from plugin bytes to a validated module
  // (the static-analysis step MNOs run before deployment, §3A).
  auto bytes = wcc::compile(R"(
    export fn schedule() -> i32 {
      var i: i32 = 0;
      while (i < 100) { store32(i * 4, i); i = i + 1; }
      output_write(0, 400);
      return 0;
    }
  )");
  if (!bytes.ok()) std::abort();
  for (auto _ : state) {
    auto module = wasm::decode_module(*bytes);
    if (!module.ok()) std::abort();
    auto st = wasm::validate_module(*module);
    benchmark::DoNotOptimize(st);
  }
}

BENCHMARK(BM_ArithmeticLoop)->Arg(1000)->Arg(100000);
BENCHMARK(BM_F64Loop)->Arg(1000)->Arg(100000);
BENCHMARK(BM_MemoryStream)->Arg(1000)->Arg(100000);
BENCHMARK(BM_WasmToWasmCall);
BENCHMARK(BM_HostCallRoundTrip);
BENCHMARK(BM_CallIndirect);
BENCHMARK(BM_DispatchThroughput)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"n", "metered"});
BENCHMARK(BM_DispatchThroughputSpecialized)
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->ArgNames({"n", "metered"});
BENCHMARK(BM_DecodeValidate);

/// Console reporting plus machine-readable capture: every run lands in the
/// shared BENCH_interp.json as `abl_engine.<name>.ns_per_op` and one entry
/// per user counter (items_per_second, warm_heap_allocs, ...), which CI
/// archives and gates regressions on (scripts/check_bench.py).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string base = "abl_engine." + run.benchmark_name();
      entries[base + ".ns_per_op"] = run.GetAdjustedRealTime();
      for (const auto& [name, counter] : run.counters) {
        entries[base + "." + name] = static_cast<double>(counter.value);
      }
    }
  }
  std::map<std::string, double> entries;
};

}  // namespace

// Defining main here keeps benchmark_main's archive member out of the link
// while letting the usual --benchmark_* flags work unchanged.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  waran::bench::bench_json_merge(reporter.entries);
  return 0;
}
