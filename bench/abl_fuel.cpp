// Ablation — cost of fuel metering (the mechanism enforcing the 5G slot
// deadline on plugins, §6B/§6C). Same compute-heavy plugin run with fuel
// armed vs disabled; the delta is the per-instruction metering overhead.
#include <benchmark/benchmark.h>

#include "plugin/plugin.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;

constexpr char kWorkSource[] = R"(
  // ~60k instructions of integer work per call.
  export fn run() -> i32 {
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < 10000) {
      acc = acc + i * 3 - (i / 7);
      i = i + 1;
    }
    store32(0, acc);
    output_write(0, 4);
    return 0;
  }
)";

std::unique_ptr<plugin::Plugin> make_plugin(uint64_t fuel) {
  auto bytes = wcc::compile(kWorkSource);
  if (!bytes.ok()) std::abort();
  plugin::PluginLimits limits;
  limits.fuel_per_call = fuel;  // 0 disables metering
  auto p = plugin::Plugin::load(*bytes, {}, limits);
  if (!p.ok()) std::abort();
  return std::move(*p);
}

void BM_PluginCall_FuelOff(benchmark::State& state) {
  auto p = make_plugin(0);
  for (auto _ : state) {
    auto r = p->call("run", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PluginCall_FuelOn(benchmark::State& state) {
  auto p = make_plugin(10'000'000);
  for (auto _ : state) {
    auto r = p->call("run", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_PluginCall_FuelOff);
BENCHMARK(BM_PluginCall_FuelOn);

}  // namespace
