// Ablation — cost of fuel metering (the mechanism enforcing the 5G slot
// deadline on plugins, §6B/§6C). Same compute-heavy plugin run with fuel
// armed vs disabled; the delta is the per-instruction metering overhead.
#include <benchmark/benchmark.h>

#include <chrono>

#include "plugin/plugin.h"
#include "wasm/wasm.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;

constexpr char kWorkSource[] = R"(
  // ~60k instructions of integer work per call.
  export fn run() -> i32 {
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < 10000) {
      acc = acc + i * 3 - (i / 7);
      i = i + 1;
    }
    store32(0, acc);
    output_write(0, 4);
    return 0;
  }
)";

std::unique_ptr<plugin::Plugin> make_plugin(uint64_t fuel) {
  auto bytes = wcc::compile(kWorkSource);
  if (!bytes.ok()) std::abort();
  plugin::PluginLimits limits;
  limits.fuel_per_call = fuel;  // 0 disables metering
  auto p = plugin::Plugin::load(*bytes, {}, limits);
  if (!p.ok()) std::abort();
  return std::move(*p);
}

void BM_PluginCall_FuelOff(benchmark::State& state) {
  auto p = make_plugin(0);
  for (auto _ : state) {
    auto r = p->call("run", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PluginCall_FuelOn(benchmark::State& state) {
  auto p = make_plugin(10'000'000);
  for (auto _ : state) {
    auto r = p->call("run", {});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_PluginCall_FuelOff);
BENCHMARK(BM_PluginCall_FuelOn);

// Instance-level cost of the wall-clock deadline guard. The interpreter's
// charge path keeps a cached poll countdown, so the unarmed run never reads
// the clock at all and the armed run touches it only every
// kDeadlinePollStride charge points; the delta between these two is the
// whole price of arming a deadline.
void BM_InstanceCall_Deadline(benchmark::State& state) {
  auto bytes = wcc::compile(kWorkSource);
  if (!bytes.ok()) std::abort();
  auto module = wasm::decode_module(*bytes);
  if (!module.ok() || !wasm::validate_module(*module).ok()) std::abort();
  if (!wasm::translate_module(*module).ok()) std::abort();
  wasm::Linker linker;
  linker.register_func(
      "waran", "output_write",
      wasm::HostFunc{wasm::FuncType{{wasm::ValType::kI32, wasm::ValType::kI32}, {}},
                     [](wasm::HostContext&, std::span<const wasm::Value>)
                         -> Result<std::optional<wasm::Value>> {
                       return std::optional<wasm::Value>{};
                     }});
  auto inst = wasm::Instance::instantiate(
      std::make_shared<wasm::Module>(std::move(*module)), linker);
  if (!inst.ok()) std::abort();

  wasm::CallOptions opts;
  opts.fuel = uint64_t{10'000'000};
  if (state.range(0) != 0) opts.deadline = std::chrono::milliseconds(100);
  wasm::CallStats stats;
  for (auto _ : state) {
    auto r = (*inst)->call("run", {}, opts, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stats.instrs_retired));
}

BENCHMARK(BM_InstanceCall_Deadline)->Arg(0)->Arg(1)->ArgName("armed");

}  // namespace
