// §5D trap-containment table (text result in the paper, no figure).
//
// Paper: "We test improper instructions such as null pointer dereference,
// out-of-bounds memory access, and double free. In all cases, the gNB host
// catches the exception and continues running, whereas running the improper
// code directly on the host causes a crash."
//
// For each fault class we run the malicious plugin inside a live gNB MAC,
// verify the fault is caught, and verify the gNB keeps scheduling (the
// host-side fallback serves the slice). Running the equivalent C code
// natively would segfault / corrupt the heap — which is exactly why the
// native arm is *not* executed here; the TrackedHeap double-free detection
// in tests/common_test.cpp stands in for it.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "sched/native.h"

using namespace waran;

int main() {
  struct Case {
    const char* kind;
    const char* description;
  };
  const Case cases[] = {
      {"null", "wild/null pointer dereference"},
      {"oob", "out-of-bounds memory access"},
      {"doublefree", "double free (caught by plugin allocator)"},
      {"loop", "infinite loop (fuel/deadline exceeded)"},
      {"shortoutput", "truncated response payload"},
      {"badalloc", "forged RNTIs / oversized grants"},
  };

  std::printf("# §5D — Fault containment: malicious plugin vs gNB host\n");
  std::printf("%-12s %-42s %-16s %-10s %-12s\n", "fault", "description", "outcome",
              "gNB alive", "UE served");

  bool all_contained = true;
  for (const Case& c : cases) {
    ran::GnbMac mac(ran::MacConfig{});
    mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());

    plugin::PluginManager mgr;
    auto bytes = sched::plugins::faulty(c.kind);
    if (!bytes.ok() || !mgr.install("evil", *bytes).ok()) {
      std::printf("%-12s %-42s %-16s\n", c.kind, c.description, "LOAD-FAILED");
      all_contained = false;
      continue;
    }
    ran::SliceConfig slice;
    slice.slice_id = 1;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, "evil"));
    uint32_t rnti = mac.add_ue(1, ran::Channel::pinned_mcs(20),
                               ran::TrafficSource::full_buffer());

    Status st = mac.run_slots(100);
    const ran::SliceStats* stats = mac.slice_stats(1);
    bool gnb_alive = st.ok();
    bool ue_served = mac.ue(rnti) != nullptr && mac.ue(rnti)->delivered_bits() > 0;
    bool caught = stats->scheduler_faults > 0 || stats->sanitized_allocs > 0;
    const char* outcome = !caught            ? "NOT-DETECTED"
                          : stats->scheduler_faults > 0 ? "trapped"
                                                        : "sanitized";
    std::printf("%-12s %-42s %-16s %-10s %-12s\n", c.kind, c.description, outcome,
                gnb_alive ? "yes" : "NO", ue_served ? "yes" : "NO");
    all_contained = all_contained && caught && gnb_alive && ue_served;
  }

  std::printf("# containment %s: every fault caught, gNB kept scheduling "
              "(native equivalent would crash the gNB process)\n",
              all_contained ? "OK" : "DEGRADED");
  return all_contained ? 0 : 1;
}
