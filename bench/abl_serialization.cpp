// Ablation — serialization formats on the plugin boundary (paper §4B lets
// operators pick the format; §5E's measured time includes it). Encode +
// decode cost of the scheduler request for each codec at several UE counts,
// plus the encoded sizes.
#include <benchmark/benchmark.h>

#include "codec/codec.h"
#include "common/rng.h"
#include "ran/phy_tables.h"

namespace {

using namespace waran;

codec::SchedRequest make_request(uint32_t n_ues) {
  Xoshiro256 rng(n_ues);
  codec::SchedRequest req;
  req.slot = 777;
  req.prb_quota = 52;
  for (uint32_t i = 0; i < n_ues; ++i) {
    codec::UeInfo ue;
    ue.rnti = 0x4601 + i;
    ue.mcs = static_cast<uint32_t>(rng.range(0, 28));
    ue.cqi = ran::cqi_from_mcs(ue.mcs);
    ue.buffer_bytes = static_cast<uint32_t>(rng.range(0, 1 << 20));
    ue.tbs_per_prb = ran::transport_block_bits(ue.mcs, 1);
    ue.avg_tput_bps = rng.uniform() * 3e7;
    ue.achievable_bps = rng.uniform() * 4.5e7;
    req.ues.push_back(ue);
  }
  return req;
}

void BM_EncodeRequest(benchmark::State& state) {
  auto kind = static_cast<codec::CodecKind>(state.range(0));
  auto codec = codec::make_codec(kind);
  codec::SchedRequest req = make_request(static_cast<uint32_t>(state.range(1)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto out = codec->encode_request(req);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(codec->name()) + " " + std::to_string(bytes) + "B");
}

void BM_DecodeRequest(benchmark::State& state) {
  auto kind = static_cast<codec::CodecKind>(state.range(0));
  auto codec = codec::make_codec(kind);
  auto bytes = codec->encode_request(make_request(static_cast<uint32_t>(state.range(1))));
  for (auto _ : state) {
    auto req = codec->decode_request(bytes);
    benchmark::DoNotOptimize(req);
  }
  state.SetLabel(codec->name());
}

void BM_RoundTripResponse(benchmark::State& state) {
  auto kind = static_cast<codec::CodecKind>(state.range(0));
  auto codec = codec::make_codec(kind);
  codec::SchedResponse resp;
  for (uint32_t i = 0; i < 20; ++i) resp.allocs.push_back({0x4601 + i, 2 + i % 5});
  for (auto _ : state) {
    auto bytes = codec->encode_response(resp);
    auto back = codec->decode_response(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetLabel(codec->name());
}

void codec_args(benchmark::internal::Benchmark* b) {
  for (int kind = 0; kind < 4; ++kind) {
    for (int ues : {1, 10, 20, 50}) b->Args({kind, ues});
  }
}

BENCHMARK(BM_EncodeRequest)->Apply(codec_args);
BENCHMARK(BM_DecodeRequest)->Apply(codec_args);
BENCHMARK(BM_RoundTripResponse)->DenseRange(0, 3);

}  // namespace
