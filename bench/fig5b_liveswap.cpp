// Figure 5b — Live swap of the MVNO scheduler.
//
// Paper setup (§5C): one MVNO with three UEs at pinned MCS 20 / 24 / 28 and
// a 22 Mb/s slice target. The MVNO's Wasm scheduler is hot-swapped twice
// while the gNB keeps running and no UE disconnects:
//   [ 0,20) s  MT — the MCS-28 UE takes (nearly) everything, MCS-20 starves
//   [20,40) s  PF — with a large time constant the starved UE is prioritized
//                   first, then allocations spread
//   [40,60) s  RR — all three UEs share equally
//
// Prints the per-second per-UE throughput series plus per-phase means.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "ran/phy_tables.h"
#include "sched/native.h"

using namespace waran;

int main() {
  ran::MacConfig cfg;
  // Large PF time constant, as the paper chose "to give a strong weight to
  // the long-run throughput".
  cfg.pf_time_constant_slots = 2000.0;
  ran::GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::TargetRateInterScheduler>(1000.0));

  plugin::PluginManager mgr;
  bench::install_sched_plugin(mgr, "mvno", "mt");

  ran::SliceConfig slice;
  slice.slice_id = 1;
  slice.name = "mvno";
  slice.target_rate_bps = 22e6;
  mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, "mvno"));

  const uint32_t mcs[] = {20, 24, 28};
  uint32_t rnti[3];
  for (int i = 0; i < 3; ++i) {
    rnti[i] = mac.add_ue(1, ran::Channel::pinned_mcs(mcs[i]),
                         ran::TrafficSource::full_buffer());
  }

  std::printf("# Fig 5b — Live swap of the MVNO scheduler (MT -> PF -> RR)\n");
  std::printf("# one slice @ 22 Mb/s target, UEs pinned at MCS 20/24/28, no restart\n");
  std::printf("%6s %8s %12s %12s %12s\n", "t[s]", "sched", "MCS20", "MCS24", "MCS28");

  struct Phase {
    const char* kind;
    int until_s;
  };
  const Phase phases[] = {{"mt", 20}, {"pf", 40}, {"rr", 60}};
  QuantileAcc phase_rate[3][3];  // [phase][ue]

  int sec = 0;
  for (int phase = 0; phase < 3; ++phase) {
    if (phase > 0) {
      // The swap happens between slots: gNB running, UEs attached.
      bench::install_sched_plugin(mgr, "mvno", phases[phase].kind);
    }
    for (; sec < phases[phase].until_s; ++sec) {
      bench::check(mac.run_slots(1000), "run_slots");
      double r[3];
      for (int i = 0; i < 3; ++i) {
        r[i] = mac.ue(rnti[i])->rate_bps(mac.now_s()) / 1e6;
        if (sec >= phases[phase].until_s - 10) phase_rate[phase][i].add(r[i]);
      }
      std::printf("%6d %8s %12.2f %12.2f %12.2f\n", sec + 1, phases[phase].kind,
                  r[0], r[1], r[2]);
    }
  }

  std::printf("\n# Per-phase means over the phase's last 10 s [Mb/s]\n");
  std::printf("%-6s %10s %10s %10s\n", "sched", "MCS20", "MCS24", "MCS28");
  for (int p = 0; p < 3; ++p) {
    std::printf("%-6s %10.2f %10.2f %10.2f\n", phases[p].kind,
                phase_rate[p][0].mean(), phase_rate[p][1].mean(),
                phase_rate[p][2].mean());
  }

  // Shape checks matching the paper's reading of Fig. 5b: MT starves the
  // worst channel; PF revives it; RR "equally share[s] the resources" —
  // equal PRBs, so each UE's rate is proportional to its per-PRB TBS.
  bool mt_starves = phase_rate[0][0].mean() < 0.15 * phase_rate[0][2].mean();
  bool rr_equal_resources = true;
  double share0 = phase_rate[2][0].mean() / ran::transport_block_bits(mcs[0], 1);
  for (int i = 1; i < 3; ++i) {
    double share = phase_rate[2][i].mean() / ran::transport_block_bits(mcs[i], 1);
    if (share < 0.9 * share0 || share > 1.1 * share0) rr_equal_resources = false;
  }
  bool pf_recovers = phase_rate[1][0].mean() > 5.0 * (phase_rate[0][0].mean() + 1e-9) ||
                     phase_rate[1][0].mean() > 1.0;
  std::printf("# MT starves the worst UE: %s | PF revives it: %s | "
              "RR equalizes PRB shares: %s\n",
              mt_starves ? "yes" : "NO", pf_recovers ? "yes" : "NO",
              rr_equal_resources ? "yes" : "NO");
  std::printf("# swaps executed live: %llu (gNB never stopped, no UE detached)\n",
              static_cast<unsigned long long>(mgr.health("mvno")->swaps));
  return (mt_starves && pf_recovers && rr_equal_resources) ? 0 : 1;
}
