// Runtime-layer ablation: multi-cell slot throughput scaling.
//
// BM_MultiCellSlots stands up an rt::GnbDeployment with N cells (one
// CellExecutor worker thread per cell, shared near-RT RIC) on virtual time
// and drives it free-running (run_slots_unsynced — no per-slot barrier), so
// the measurement is pure slot-processing throughput: every cell's MAC +
// three Wasm MVNO schedulers + E2 agent, with no wall-clock pacing.
//
// items_per_second counts MAC slots across all cells, so on a machine with
// >= N cores an N-cell run should approach N x the 1-cell rate. main()
// derives `abl_rt.BM_MultiCellSlots.scale_<N>x` ratio keys from the runs
// and merges everything into BENCH_interp.json. The scale ratios are
// reported, not gated — CI runner core counts vary — while the 1-cell
// throughput key is gated conservatively by scripts/check_bench.py.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "rt/deployment.h"

namespace {

using namespace waran;

constexpr uint32_t kSlotsPerIter = 16;

void BM_MultiCellSlots(benchmark::State& state) {
  const uint32_t cells = static_cast<uint32_t>(state.range(0));
  rt::DeploymentConfig cfg;
  cfg.cells = cells;
  cfg.seed = 42;
  cfg.threaded = true;
  cfg.virtual_time = true;
  cfg.report_period_slots = 10;
  rt::GnbDeployment dep(cfg);
  if (!dep.status().ok()) {
    state.SkipWithError(dep.status().error().message.c_str());
    return;
  }
  for (auto _ : state) {
    auto st = dep.run_slots_unsynced(kSlotsPerIter);
    if (!st.ok()) {
      state.SkipWithError(st.error().message.c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlotsPerIter) * cells);
  state.counters["cells"] = static_cast<double>(cells);
}

BENCHMARK(BM_MultiCellSlots)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("cells")
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// UE-count stress sweep: how slot cost scales with per-slice UE population
// and with slice count (each slice is one Wasm scheduler call per slot, so
// slices/cell scales dispatch count while UEs/slice scales per-call work).
// Keys land in BENCH_interp.json as abl_rt.BM_UeStress.* — reported for
// trend tracking, not gated (absolute cost varies with CI hardware).
void BM_UeStress(benchmark::State& state) {
  const uint32_t ues_per_slice = static_cast<uint32_t>(state.range(0));
  const uint32_t slices = static_cast<uint32_t>(state.range(1));
  static const char* kPolicies[] = {"rr", "mt", "pf"};

  rt::DeploymentConfig cfg;
  cfg.cells = 1;
  cfg.seed = 42;
  cfg.threaded = false;  // single cell: measure the slot path, not the pool
  cfg.virtual_time = true;
  cfg.report_period_slots = 10;
  cfg.slices.clear();
  for (uint32_t s = 0; s < slices; ++s) {
    rt::SliceSpec spec;
    spec.slice_id = s + 1;
    spec.name = "mvno" + std::to_string(s + 1);
    spec.policy = kPolicies[s % 3];
    spec.target_rate_bps = 8e6;
    spec.quota_prbs = 8;
    spec.ues = ues_per_slice;
    cfg.slices.push_back(spec);
  }
  rt::GnbDeployment dep(cfg);
  if (!dep.status().ok()) {
    state.SkipWithError(dep.status().error().message.c_str());
    return;
  }
  for (auto _ : state) {
    auto st = dep.run_slots_unsynced(kSlotsPerIter);
    if (!st.ok()) {
      state.SkipWithError(st.error().message.c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSlotsPerIter));
  state.counters["ues"] = static_cast<double>(ues_per_slice * slices);
  state.counters["slices"] = static_cast<double>(slices);
}

BENCHMARK(BM_UeStress)
    ->Args({2, 3})
    ->Args({8, 3})
    ->Args({32, 3})
    ->Args({8, 6})
    ->ArgNames({"ues_per_slice", "slices"});

/// Same console + JSON capture shape as the other ablations (see
/// abl_engine.cpp): every run lands in BENCH_interp.json as
/// `abl_rt.<name>.<counter>`.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string base = "abl_rt." + run.benchmark_name();
      entries[base + ".ns_per_op"] = run.GetAdjustedRealTime();
      for (const auto& [name, counter] : run.counters) {
        entries[base + "." + name] = static_cast<double>(counter.value);
      }
    }
  }
  std::map<std::string, double> entries;
};

/// slots/sec for the N-cell run, or 0 if that run is missing.
double cells_ips(const std::map<std::string, double>& entries, uint32_t n) {
  const std::string tag = "cells:" + std::to_string(n) + "/";
  for (const auto& [key, value] : entries) {
    if (key.find(tag) != std::string::npos &&
        key.size() > 17 && key.rfind(".items_per_second") == key.size() - 17) {
      return value;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Scaling summary: N-cell aggregate slot rate over the 1-cell rate. On a
  // single-core machine these hover near 1.0; with >= N cores they should
  // approach N (the acceptance target is >= 3x at 4 cells on 4+ cores).
  const double base_ips = cells_ips(reporter.entries, 1);
  if (base_ips > 0.0) {
    for (uint32_t n : {2u, 4u, 8u}) {
      const double ips = cells_ips(reporter.entries, n);
      if (ips <= 0.0) continue;
      const double ratio = ips / base_ips;
      reporter.entries["abl_rt.BM_MultiCellSlots.scale_" + std::to_string(n) +
                       "x"] = ratio;
      std::printf("scale %ux: %.0f slots/s vs %.0f slots/s at 1 cell "
                  "(%.2fx)\n",
                  n, ips, base_ips, ratio);
    }
  }

  waran::bench::bench_json_merge(reporter.entries);
  return 0;
}
