// Figure 5a — Co-existence of MVNOs.
//
// Paper setup (§5B): three MVNOs on one gNB (10 MHz, 52 PRB, 1 ms slots),
// each with its own Wasm intra-slice scheduler plugin and a target
// cumulative DL rate enforced by the target-rate inter-slice scheduler:
//   MVNO 1: MT scheduler, target  3 Mb/s
//   MVNO 2: RR scheduler, target 12 Mb/s
//   MVNO 3: PF scheduler, target 15 Mb/s
// All UEs run a saturating (iperf3-like) DL flow.
//
// Paper result: every MVNO converges to its target rate, co-existing on the
// same gNB. This harness prints the per-second slice throughput series and
// a summary row per MVNO (target vs achieved over the second half).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "sched/native.h"

using namespace waran;

int main() {
  ran::MacConfig cfg;  // 52 PRBs, 1 ms slots
  ran::GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::TargetRateInterScheduler>(1000.0));

  plugin::PluginManager mgr;
  struct Mvno {
    uint32_t slice_id;
    const char* kind;
    double target_bps;
    int n_ues;
  };
  const Mvno mvnos[] = {
      {1, "mt", 3e6, 3},
      {2, "rr", 12e6, 3},
      {3, "pf", 15e6, 3},
  };

  for (const Mvno& m : mvnos) {
    bench::install_sched_plugin(mgr, m.kind, m.kind);
    ran::SliceConfig slice;
    slice.slice_id = m.slice_id;
    slice.name = m.kind;
    slice.target_rate_bps = m.target_bps;
    mac.add_slice(slice, std::make_unique<sched::WasmIntraScheduler>(mgr, m.kind));
    for (int u = 0; u < m.n_ues; ++u) {
      ran::Channel::FadingParams fading;
      fading.mean_snr_db = 16.0 + 2.0 * u;
      mac.add_ue(m.slice_id, ran::Channel::fading(fading, 1000 * m.slice_id + u),
                 ran::TrafficSource::full_buffer());
    }
  }

  std::printf("# Fig 5a — Co-existence of MVNOs (Wasm slice schedulers)\n");
  std::printf("# 52 PRBs, 1 ms slots, full-buffer DL, target-rate inter-slice scheduler\n");
  std::printf("%6s %14s %14s %14s\n", "t[s]", "MT@3Mb/s", "RR@12Mb/s", "PF@15Mb/s");

  const int kSeconds = 30;
  QuantileAcc achieved[3];
  for (int sec = 1; sec <= kSeconds; ++sec) {
    bench::check(mac.run_slots(1000), "run_slots");
    double rates[3];
    for (int i = 0; i < 3; ++i) {
      rates[i] = mac.slice_rate_bps(mvnos[i].slice_id) / 1e6;
      if (sec > kSeconds / 2) achieved[i].add(rates[i]);
    }
    std::printf("%6d %14.2f %14.2f %14.2f\n", sec, rates[0], rates[1], rates[2]);
  }

  std::printf("\n# Summary (mean over the second half of the run)\n");
  std::printf("%-8s %-6s %12s %12s %10s %8s\n", "MVNO", "sched", "target[Mb/s]",
              "achieved", "error[%]", "faults");
  bool all_ok = true;
  for (int i = 0; i < 3; ++i) {
    double mean = achieved[i].mean();
    double err = 100.0 * (mean - mvnos[i].target_bps / 1e6) / (mvnos[i].target_bps / 1e6);
    const ran::SliceStats* st = mac.slice_stats(mvnos[i].slice_id);
    std::printf("%-8d %-6s %12.1f %12.2f %+10.1f %8llu\n", mvnos[i].slice_id,
                mvnos[i].kind, mvnos[i].target_bps / 1e6, mean, err,
                static_cast<unsigned long long>(st->scheduler_faults));
    if (std::abs(err) > 20.0) all_ok = false;
  }
  std::printf("# co-existence %s: every MVNO tracks its target on a shared gNB\n",
              all_ok ? "OK" : "DEGRADED");
  return all_ok ? 0 : 1;
}
