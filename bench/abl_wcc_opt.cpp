// Ablation — the wcc optimizer's effect (paper §6C "code optimization" as a
// mitigation for interpretation overhead): retired instructions and wall
// time of the real scheduler plugins compiled with and without the
// optimizer, plus a folding-heavy synthetic kernel as an upper bound.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "plugin/plugin.h"
#include "ran/phy_tables.h"
#include "sched/plugins.h"
#include "codec/wire.h"
#include "wcc/compiler.h"

namespace {

using namespace waran;

std::unique_ptr<plugin::Plugin> load(const std::string& src, bool optimize) {
  wcc::CompileOptions options;
  options.optimize = optimize;
  auto bytes = wcc::compile(src, options);
  if (!bytes.ok()) std::abort();
  auto p = plugin::Plugin::load(*bytes);
  if (!p.ok()) std::abort();
  return std::move(*p);
}

std::vector<uint8_t> sched_input() {
  Xoshiro256 rng(5);
  codec::SchedRequest req;
  req.slot = 3;
  req.prb_quota = 52;
  for (uint32_t i = 0; i < 20; ++i) {
    codec::UeInfo ue;
    ue.rnti = 0x4601 + i;
    ue.mcs = static_cast<uint32_t>(rng.range(0, 28));
    ue.buffer_bytes = static_cast<uint32_t>(rng.range(1, 1 << 20));
    ue.tbs_per_prb = ran::transport_block_bits(ue.mcs, 1);
    ue.avg_tput_bps = rng.uniform() * 3e7;
    ue.achievable_bps = rng.uniform() * 4.5e7;
    req.ues.push_back(ue);
  }
  return codec::wire::encode_request(req);
}

void run_plugin_bench(benchmark::State& state, const std::string& src,
                      const std::string& entry, const std::vector<uint8_t>& input,
                      bool optimize) {
  auto p = load(src, optimize);
  for (auto _ : state) {
    auto r = p->call(entry, input);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel((optimize ? "opt " : "noopt ") +
                 std::to_string(p->last_call_instructions()) + " instr/call");
}

void BM_PfPlugin(benchmark::State& state) {
  run_plugin_bench(state, sched::plugins::scheduler_source("pf"), "schedule",
                   sched_input(), state.range(0) != 0);
}

// Folding-heavy kernel: constants and identities inside a hot loop.
const char* kFoldHeavy = R"(
  export fn run() -> i32 {
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < 5000) {
      acc = acc + i * (3 + 4 - 6) + (100 / 10) - (0 * 7) + i * 1;
      i = i + 1 + 0;
    }
    store32(0, acc);
    output_write(0, 4);
    return 0;
  }
)";

void BM_FoldHeavy(benchmark::State& state) {
  run_plugin_bench(state, kFoldHeavy, "run", {}, state.range(0) != 0);
}

BENCHMARK(BM_PfPlugin)->Arg(0)->Arg(1);
BENCHMARK(BM_FoldHeavy)->Arg(0)->Arg(1);

}  // namespace
