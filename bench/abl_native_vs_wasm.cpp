// Ablation — native scheduler vs Wasm plugin (the "running speed" gap the
// paper discusses in §6C). Same policy, same inputs: the native baseline is
// a direct C++ call; the Wasm path adds serialization, two sandbox
// crossings, and interpretation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "plugin/manager.h"
#include "ran/phy_tables.h"
#include "sched/native.h"
#include "sched/plugins.h"
#include "sched/wasm_sched.h"

namespace {

using namespace waran;

codec::SchedRequest make_request(uint32_t n_ues, uint32_t slot) {
  Xoshiro256 rng(n_ues * 31 + slot);
  codec::SchedRequest req;
  req.slot = slot;
  req.prb_quota = 52;
  for (uint32_t i = 0; i < n_ues; ++i) {
    codec::UeInfo ue;
    ue.rnti = 0x4601 + i;
    ue.mcs = static_cast<uint32_t>(rng.range(0, 28));
    ue.cqi = ran::cqi_from_mcs(ue.mcs);
    ue.buffer_bytes = static_cast<uint32_t>(rng.range(1, 1 << 20));
    ue.tbs_per_prb = ran::transport_block_bits(ue.mcs, 1);
    ue.avg_tput_bps = rng.uniform() * 3e7;
    ue.achievable_bps = ran::transport_block_bits(ue.mcs, 52) * 1000.0;
    req.ues.push_back(ue);
  }
  return req;
}

void BM_Native(benchmark::State& state) {
  std::string kind = state.range(0) == 0 ? "rr" : state.range(0) == 1 ? "pf" : "mt";
  auto sched = sched::make_native_scheduler(kind);
  codec::SchedRequest req = make_request(static_cast<uint32_t>(state.range(1)), 3);
  for (auto _ : state) {
    auto resp = sched->schedule(req);
    benchmark::DoNotOptimize(resp);
  }
  state.SetLabel("native:" + kind);
}

void BM_Wasm(benchmark::State& state) {
  std::string kind = state.range(0) == 0 ? "rr" : state.range(0) == 1 ? "pf" : "mt";
  plugin::PluginManager mgr;
  auto bytes = sched::plugins::scheduler(kind);
  if (!bytes.ok() || !mgr.install("s", *bytes).ok()) std::abort();
  sched::WasmIntraScheduler sched(mgr, "s");
  codec::SchedRequest req = make_request(static_cast<uint32_t>(state.range(1)), 3);
  for (auto _ : state) {
    auto resp = sched.schedule(req);
    benchmark::DoNotOptimize(resp);
  }
  state.SetLabel("wasm:" + kind);
}

void args(benchmark::internal::Benchmark* b) {
  for (int kind = 0; kind < 3; ++kind) {
    for (int ues : {1, 10, 20}) b->Args({kind, ues});
  }
}

BENCHMARK(BM_Native)->Apply(args);
BENCHMARK(BM_Wasm)->Apply(args);

}  // namespace
