// Figure 5c — Memory safety: leak inside the sandbox vs on the host.
//
// Paper setup (§5D): a scheduler that allocates on every invocation and
// never frees. Run (a) inside a Wasm plugin — the gNB host's memory stays
// stable because the leak is confined to the plugin's linear memory, which
// is capped and reclaimed wholesale on plugin unload; and (b) natively on
// the host — memory grows linearly, a classic leak.
//
// We run both arms for 80 simulated seconds (one scheduler call per ms,
// leaking 64 KiB per call). The "host" arm routes allocations through the
// byte-accounting TrackedHeap (a real in-process leak of this size would be
// ~5 GiB); the plugin arm is a real Wasm instance growing its own memory.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/tracked_alloc.h"

using namespace waran;

int main() {
  plugin::PluginManager mgr;
  auto leak = sched::plugins::faulty("leak");
  if (!leak.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", leak.error().message.c_str());
    return 1;
  }
  if (auto st = mgr.install("leak", *leak); !st.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", st.error().message.c_str());
    return 1;
  }

  TrackedHeap host_heap;
  constexpr uint32_t kLeakBytesPerCall = 65536;
  constexpr int kSeconds = 80;
  constexpr int kCallsPerSecond = 1000;

  size_t plugin_base = mgr.plugin("leak")->memory_bytes();

  std::printf("# Fig 5c — Memory increase while running leaky scheduler code\n");
  std::printf("# 1 call/ms, 64 KiB leaked per call, 80 s\n");
  std::printf("%6s %22s %22s\n", "t[s]", "plugin-arm [MiB]", "host-arm [MiB]");

  double plugin_final = 0, host_final = 0;
  for (int sec = 1; sec <= kSeconds; ++sec) {
    for (int call = 0; call < kCallsPerSecond; ++call) {
      // Sandbox arm: the leak lives inside the plugin's linear memory.
      auto r = mgr.call("leak", "schedule", {});
      if (!r.ok()) {
        std::fprintf(stderr, "FATAL: plugin call failed: %s\n",
                     r.error().message.c_str());
        return 1;
      }
      // Host arm: the same allocation pattern against the host heap.
      auto h = host_heap.allocate(kLeakBytesPerCall);
      (void)h;
    }
    // What an RSS probe of the gNB process would attribute to each arm.
    double plugin_mib =
        static_cast<double>(mgr.plugin("leak")->memory_bytes() - plugin_base) /
        (1024.0 * 1024.0);
    double host_mib = static_cast<double>(host_heap.live_bytes()) / (1024.0 * 1024.0);
    plugin_final = plugin_mib;
    host_final = host_mib;
    if (sec % 5 == 0 || sec == 1) {
      std::printf("%6d %22.2f %22.2f\n", sec, plugin_mib, host_mib);
    }
  }

  std::printf("\n# Plugin arm: growth stops at the sandbox memory cap (%zu KiB pages);\n",
              mgr.plugin("leak")->memory_bytes() / 1024);
  std::printf("# unloading the plugin reclaims all of it at once.\n");
  bool plugin_flat = plugin_final < 8.0;           // capped around 4 MiB
  bool host_linear = host_final > 4000.0;          // ~5 GiB after 80 s
  std::printf("# host leak after %d s: %.0f MiB (linear) | plugin: %.2f MiB (flat)\n",
              kSeconds, host_final, plugin_final);
  std::printf("# shape %s: sandbox confines the leak, host arm grows without bound\n",
              (plugin_flat && host_linear) ? "OK" : "DEGRADED");

  // And the reclamation: dropping the plugin releases its whole memory.
  bench::check(mgr.remove("leak"), "remove leak plugin");
  std::printf("# plugin removed: leaked sandbox memory fully reclaimed\n");
  return (plugin_flat && host_linear) ? 0 : 1;
}
