// Ablation — BLER/HARQ substrate extension (beyond the paper's error-free
// operating point): goodput of one full-buffer UE vs block error rate, with
// HARQ off and on. Shows the retransmission machinery behaves like the
// textbook curve: no-HARQ goodput decays linearly in BLER, HARQ flattens it
// until retransmission slots dominate.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "ran/mac.h"
#include "sched/native.h"

using namespace waran;

namespace {

double run(double bler, bool harq) {
  ran::MacConfig cfg;
  cfg.channel_errors = bler > 0.0;
  cfg.enable_harq = harq;
  ran::GnbMac mac(cfg);
  mac.set_inter_scheduler(std::make_unique<sched::WeightedShareInterScheduler>());
  ran::SliceConfig slice;
  slice.slice_id = 1;
  mac.add_slice(slice, std::make_unique<sched::RrScheduler>());
  ran::Channel ch = ran::Channel::pinned_mcs(20);
  ch.set_fixed_bler(bler);
  uint32_t rnti = mac.add_ue(1, ch, ran::TrafficSource::full_buffer());
  bench::check(mac.run_slots(5000), "run_slots");
  return mac.ue(rnti)->rate_bps(mac.now_s()) / 1e6;
}

}  // namespace

int main() {
  std::printf("# HARQ ablation — goodput [Mb/s] vs BLER, 1 UE @ MCS 20, 52 PRB\n");
  std::printf("%8s %14s %14s %14s\n", "BLER", "no errors", "no HARQ", "HARQ(4tx)");
  double clean = run(0.0, true);
  bool shape_ok = true;
  for (double bler : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7}) {
    double off = run(bler, false);
    double on = run(bler, true);
    std::printf("%8.2f %14.2f %14.2f %14.2f\n", bler, clean, off, on);
    if (on < off) shape_ok = false;                   // HARQ never hurts goodput
    if (off > clean * (1.0 - bler) * 1.1) shape_ok = false;  // linear decay
  }
  std::printf("# shape %s: no-HARQ decays ~linearly with BLER; "
              "HARQ recovers most losses\n",
              shape_ok ? "OK" : "DEGRADED");
  return shape_ok ? 0 : 1;
}
