# Empty compiler generated dependencies file for abl_fuel.
# This may be replaced when dependencies are built.
