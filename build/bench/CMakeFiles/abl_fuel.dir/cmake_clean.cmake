file(REMOVE_RECURSE
  "CMakeFiles/abl_fuel.dir/abl_fuel.cpp.o"
  "CMakeFiles/abl_fuel.dir/abl_fuel.cpp.o.d"
  "abl_fuel"
  "abl_fuel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fuel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
