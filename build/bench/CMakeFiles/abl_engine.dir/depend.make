# Empty dependencies file for abl_engine.
# This may be replaced when dependencies are built.
