file(REMOVE_RECURSE
  "CMakeFiles/abl_engine.dir/abl_engine.cpp.o"
  "CMakeFiles/abl_engine.dir/abl_engine.cpp.o.d"
  "abl_engine"
  "abl_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
