# Empty compiler generated dependencies file for ric_roundtrip.
# This may be replaced when dependencies are built.
