file(REMOVE_RECURSE
  "CMakeFiles/ric_roundtrip.dir/ric_roundtrip.cpp.o"
  "CMakeFiles/ric_roundtrip.dir/ric_roundtrip.cpp.o.d"
  "ric_roundtrip"
  "ric_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ric_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
