file(REMOVE_RECURSE
  "CMakeFiles/fig5c_memsafety.dir/fig5c_memsafety.cpp.o"
  "CMakeFiles/fig5c_memsafety.dir/fig5c_memsafety.cpp.o.d"
  "fig5c_memsafety"
  "fig5c_memsafety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_memsafety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
