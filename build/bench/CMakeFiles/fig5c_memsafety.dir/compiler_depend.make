# Empty compiler generated dependencies file for fig5c_memsafety.
# This may be replaced when dependencies are built.
