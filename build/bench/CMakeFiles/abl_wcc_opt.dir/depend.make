# Empty dependencies file for abl_wcc_opt.
# This may be replaced when dependencies are built.
