file(REMOVE_RECURSE
  "CMakeFiles/abl_wcc_opt.dir/abl_wcc_opt.cpp.o"
  "CMakeFiles/abl_wcc_opt.dir/abl_wcc_opt.cpp.o.d"
  "abl_wcc_opt"
  "abl_wcc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wcc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
