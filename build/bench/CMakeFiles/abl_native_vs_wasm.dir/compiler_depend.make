# Empty compiler generated dependencies file for abl_native_vs_wasm.
# This may be replaced when dependencies are built.
