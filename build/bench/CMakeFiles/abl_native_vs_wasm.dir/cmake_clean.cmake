file(REMOVE_RECURSE
  "CMakeFiles/abl_native_vs_wasm.dir/abl_native_vs_wasm.cpp.o"
  "CMakeFiles/abl_native_vs_wasm.dir/abl_native_vs_wasm.cpp.o.d"
  "abl_native_vs_wasm"
  "abl_native_vs_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_native_vs_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
