file(REMOVE_RECURSE
  "CMakeFiles/trap_containment.dir/trap_containment.cpp.o"
  "CMakeFiles/trap_containment.dir/trap_containment.cpp.o.d"
  "trap_containment"
  "trap_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
