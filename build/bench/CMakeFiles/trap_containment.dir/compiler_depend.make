# Empty compiler generated dependencies file for trap_containment.
# This may be replaced when dependencies are built.
