file(REMOVE_RECURSE
  "CMakeFiles/abl_serialization.dir/abl_serialization.cpp.o"
  "CMakeFiles/abl_serialization.dir/abl_serialization.cpp.o.d"
  "abl_serialization"
  "abl_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
