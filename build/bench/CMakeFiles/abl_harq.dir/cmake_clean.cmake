file(REMOVE_RECURSE
  "CMakeFiles/abl_harq.dir/abl_harq.cpp.o"
  "CMakeFiles/abl_harq.dir/abl_harq.cpp.o.d"
  "abl_harq"
  "abl_harq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_harq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
