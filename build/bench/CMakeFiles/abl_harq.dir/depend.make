# Empty dependencies file for abl_harq.
# This may be replaced when dependencies are built.
