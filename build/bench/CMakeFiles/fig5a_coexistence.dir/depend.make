# Empty dependencies file for fig5a_coexistence.
# This may be replaced when dependencies are built.
