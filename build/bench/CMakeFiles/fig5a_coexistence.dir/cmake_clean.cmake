file(REMOVE_RECURSE
  "CMakeFiles/fig5a_coexistence.dir/fig5a_coexistence.cpp.o"
  "CMakeFiles/fig5a_coexistence.dir/fig5a_coexistence.cpp.o.d"
  "fig5a_coexistence"
  "fig5a_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
