file(REMOVE_RECURSE
  "CMakeFiles/fig5b_liveswap.dir/fig5b_liveswap.cpp.o"
  "CMakeFiles/fig5b_liveswap.dir/fig5b_liveswap.cpp.o.d"
  "fig5b_liveswap"
  "fig5b_liveswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_liveswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
