# Empty dependencies file for fig5b_liveswap.
# This may be replaced when dependencies are built.
