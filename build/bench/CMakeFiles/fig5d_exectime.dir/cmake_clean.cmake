file(REMOVE_RECURSE
  "CMakeFiles/fig5d_exectime.dir/fig5d_exectime.cpp.o"
  "CMakeFiles/fig5d_exectime.dir/fig5d_exectime.cpp.o.d"
  "fig5d_exectime"
  "fig5d_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
