# Empty dependencies file for fig5d_exectime.
# This may be replaced when dependencies are built.
