file(REMOVE_RECURSE
  "libwaran_ric.a"
)
