# Empty compiler generated dependencies file for waran_ric.
# This may be replaced when dependencies are built.
