file(REMOVE_RECURSE
  "CMakeFiles/waran_ric.dir/e2lite.cpp.o"
  "CMakeFiles/waran_ric.dir/e2lite.cpp.o.d"
  "CMakeFiles/waran_ric.dir/gnb_agent.cpp.o"
  "CMakeFiles/waran_ric.dir/gnb_agent.cpp.o.d"
  "CMakeFiles/waran_ric.dir/near_rt_ric.cpp.o"
  "CMakeFiles/waran_ric.dir/near_rt_ric.cpp.o.d"
  "CMakeFiles/waran_ric.dir/plugin_sources.cpp.o"
  "CMakeFiles/waran_ric.dir/plugin_sources.cpp.o.d"
  "CMakeFiles/waran_ric.dir/transport.cpp.o"
  "CMakeFiles/waran_ric.dir/transport.cpp.o.d"
  "libwaran_ric.a"
  "libwaran_ric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_ric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
