# Empty dependencies file for waran_ric.
# This may be replaced when dependencies are built.
