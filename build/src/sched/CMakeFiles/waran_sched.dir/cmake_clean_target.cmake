file(REMOVE_RECURSE
  "libwaran_sched.a"
)
