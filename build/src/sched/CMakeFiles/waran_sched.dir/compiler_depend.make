# Empty compiler generated dependencies file for waran_sched.
# This may be replaced when dependencies are built.
