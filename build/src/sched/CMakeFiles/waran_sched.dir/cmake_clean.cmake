file(REMOVE_RECURSE
  "CMakeFiles/waran_sched.dir/native.cpp.o"
  "CMakeFiles/waran_sched.dir/native.cpp.o.d"
  "CMakeFiles/waran_sched.dir/plugins.cpp.o"
  "CMakeFiles/waran_sched.dir/plugins.cpp.o.d"
  "CMakeFiles/waran_sched.dir/wasm_sched.cpp.o"
  "CMakeFiles/waran_sched.dir/wasm_sched.cpp.o.d"
  "libwaran_sched.a"
  "libwaran_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
