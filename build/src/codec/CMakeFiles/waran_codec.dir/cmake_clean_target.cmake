file(REMOVE_RECURSE
  "libwaran_codec.a"
)
