
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/codecs.cpp" "src/codec/CMakeFiles/waran_codec.dir/codecs.cpp.o" "gcc" "src/codec/CMakeFiles/waran_codec.dir/codecs.cpp.o.d"
  "/root/repo/src/codec/json.cpp" "src/codec/CMakeFiles/waran_codec.dir/json.cpp.o" "gcc" "src/codec/CMakeFiles/waran_codec.dir/json.cpp.o.d"
  "/root/repo/src/codec/wire.cpp" "src/codec/CMakeFiles/waran_codec.dir/wire.cpp.o" "gcc" "src/codec/CMakeFiles/waran_codec.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waran_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
