# Empty dependencies file for waran_codec.
# This may be replaced when dependencies are built.
