file(REMOVE_RECURSE
  "CMakeFiles/waran_codec.dir/codecs.cpp.o"
  "CMakeFiles/waran_codec.dir/codecs.cpp.o.d"
  "CMakeFiles/waran_codec.dir/json.cpp.o"
  "CMakeFiles/waran_codec.dir/json.cpp.o.d"
  "CMakeFiles/waran_codec.dir/wire.cpp.o"
  "CMakeFiles/waran_codec.dir/wire.cpp.o.d"
  "libwaran_codec.a"
  "libwaran_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
