# Empty dependencies file for waran_wasm.
# This may be replaced when dependencies are built.
