
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasm/decoder.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/decoder.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/decoder.cpp.o.d"
  "/root/repo/src/wasm/disasm.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/disasm.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/disasm.cpp.o.d"
  "/root/repo/src/wasm/instance.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/instance.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/instance.cpp.o.d"
  "/root/repo/src/wasm/memory.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/memory.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/memory.cpp.o.d"
  "/root/repo/src/wasm/module.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/module.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/module.cpp.o.d"
  "/root/repo/src/wasm/opcode.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/opcode.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/opcode.cpp.o.d"
  "/root/repo/src/wasm/validator.cpp" "src/wasm/CMakeFiles/waran_wasm.dir/validator.cpp.o" "gcc" "src/wasm/CMakeFiles/waran_wasm.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waran_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
