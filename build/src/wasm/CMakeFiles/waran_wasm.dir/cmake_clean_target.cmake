file(REMOVE_RECURSE
  "libwaran_wasm.a"
)
