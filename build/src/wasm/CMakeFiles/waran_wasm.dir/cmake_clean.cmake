file(REMOVE_RECURSE
  "CMakeFiles/waran_wasm.dir/decoder.cpp.o"
  "CMakeFiles/waran_wasm.dir/decoder.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/disasm.cpp.o"
  "CMakeFiles/waran_wasm.dir/disasm.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/instance.cpp.o"
  "CMakeFiles/waran_wasm.dir/instance.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/memory.cpp.o"
  "CMakeFiles/waran_wasm.dir/memory.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/module.cpp.o"
  "CMakeFiles/waran_wasm.dir/module.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/opcode.cpp.o"
  "CMakeFiles/waran_wasm.dir/opcode.cpp.o.d"
  "CMakeFiles/waran_wasm.dir/validator.cpp.o"
  "CMakeFiles/waran_wasm.dir/validator.cpp.o.d"
  "libwaran_wasm.a"
  "libwaran_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
