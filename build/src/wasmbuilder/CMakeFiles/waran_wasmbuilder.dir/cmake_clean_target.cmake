file(REMOVE_RECURSE
  "libwaran_wasmbuilder.a"
)
