
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasmbuilder/builder.cpp" "src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/builder.cpp.o" "gcc" "src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/builder.cpp.o.d"
  "/root/repo/src/wasmbuilder/wat.cpp" "src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/wat.cpp.o" "gcc" "src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/wat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/waran_wasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
