file(REMOVE_RECURSE
  "CMakeFiles/waran_wasmbuilder.dir/builder.cpp.o"
  "CMakeFiles/waran_wasmbuilder.dir/builder.cpp.o.d"
  "CMakeFiles/waran_wasmbuilder.dir/wat.cpp.o"
  "CMakeFiles/waran_wasmbuilder.dir/wat.cpp.o.d"
  "libwaran_wasmbuilder.a"
  "libwaran_wasmbuilder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_wasmbuilder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
