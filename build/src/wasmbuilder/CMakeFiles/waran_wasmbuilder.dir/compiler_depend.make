# Empty compiler generated dependencies file for waran_wasmbuilder.
# This may be replaced when dependencies are built.
