file(REMOVE_RECURSE
  "CMakeFiles/waran_plugin.dir/governor.cpp.o"
  "CMakeFiles/waran_plugin.dir/governor.cpp.o.d"
  "CMakeFiles/waran_plugin.dir/manager.cpp.o"
  "CMakeFiles/waran_plugin.dir/manager.cpp.o.d"
  "CMakeFiles/waran_plugin.dir/plugin.cpp.o"
  "CMakeFiles/waran_plugin.dir/plugin.cpp.o.d"
  "libwaran_plugin.a"
  "libwaran_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
