# Empty compiler generated dependencies file for waran_plugin.
# This may be replaced when dependencies are built.
