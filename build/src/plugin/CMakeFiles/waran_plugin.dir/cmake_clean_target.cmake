file(REMOVE_RECURSE
  "libwaran_plugin.a"
)
