file(REMOVE_RECURSE
  "CMakeFiles/waran_wcc.dir/compiler.cpp.o"
  "CMakeFiles/waran_wcc.dir/compiler.cpp.o.d"
  "CMakeFiles/waran_wcc.dir/lexer.cpp.o"
  "CMakeFiles/waran_wcc.dir/lexer.cpp.o.d"
  "CMakeFiles/waran_wcc.dir/optimizer.cpp.o"
  "CMakeFiles/waran_wcc.dir/optimizer.cpp.o.d"
  "CMakeFiles/waran_wcc.dir/parser.cpp.o"
  "CMakeFiles/waran_wcc.dir/parser.cpp.o.d"
  "libwaran_wcc.a"
  "libwaran_wcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_wcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
