
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wcc/compiler.cpp" "src/wcc/CMakeFiles/waran_wcc.dir/compiler.cpp.o" "gcc" "src/wcc/CMakeFiles/waran_wcc.dir/compiler.cpp.o.d"
  "/root/repo/src/wcc/lexer.cpp" "src/wcc/CMakeFiles/waran_wcc.dir/lexer.cpp.o" "gcc" "src/wcc/CMakeFiles/waran_wcc.dir/lexer.cpp.o.d"
  "/root/repo/src/wcc/optimizer.cpp" "src/wcc/CMakeFiles/waran_wcc.dir/optimizer.cpp.o" "gcc" "src/wcc/CMakeFiles/waran_wcc.dir/optimizer.cpp.o.d"
  "/root/repo/src/wcc/parser.cpp" "src/wcc/CMakeFiles/waran_wcc.dir/parser.cpp.o" "gcc" "src/wcc/CMakeFiles/waran_wcc.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waran_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/waran_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
