file(REMOVE_RECURSE
  "libwaran_wcc.a"
)
