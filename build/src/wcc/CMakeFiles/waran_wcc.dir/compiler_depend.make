# Empty compiler generated dependencies file for waran_wcc.
# This may be replaced when dependencies are built.
