file(REMOVE_RECURSE
  "libwaran_ran.a"
)
