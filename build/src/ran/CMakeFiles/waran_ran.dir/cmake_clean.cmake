file(REMOVE_RECURSE
  "CMakeFiles/waran_ran.dir/channel.cpp.o"
  "CMakeFiles/waran_ran.dir/channel.cpp.o.d"
  "CMakeFiles/waran_ran.dir/mac.cpp.o"
  "CMakeFiles/waran_ran.dir/mac.cpp.o.d"
  "CMakeFiles/waran_ran.dir/phy_tables.cpp.o"
  "CMakeFiles/waran_ran.dir/phy_tables.cpp.o.d"
  "CMakeFiles/waran_ran.dir/traffic.cpp.o"
  "CMakeFiles/waran_ran.dir/traffic.cpp.o.d"
  "libwaran_ran.a"
  "libwaran_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
