# Empty compiler generated dependencies file for waran_ran.
# This may be replaced when dependencies are built.
