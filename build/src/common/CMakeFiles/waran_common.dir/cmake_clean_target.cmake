file(REMOVE_RECURSE
  "libwaran_common.a"
)
