# Empty compiler generated dependencies file for waran_common.
# This may be replaced when dependencies are built.
