file(REMOVE_RECURSE
  "CMakeFiles/waran_common.dir/bytes.cpp.o"
  "CMakeFiles/waran_common.dir/bytes.cpp.o.d"
  "CMakeFiles/waran_common.dir/log.cpp.o"
  "CMakeFiles/waran_common.dir/log.cpp.o.d"
  "CMakeFiles/waran_common.dir/stats.cpp.o"
  "CMakeFiles/waran_common.dir/stats.cpp.o.d"
  "CMakeFiles/waran_common.dir/tracked_alloc.cpp.o"
  "CMakeFiles/waran_common.dir/tracked_alloc.cpp.o.d"
  "libwaran_common.a"
  "libwaran_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waran_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
