# Empty dependencies file for mvno_slicing.
# This may be replaced when dependencies are built.
