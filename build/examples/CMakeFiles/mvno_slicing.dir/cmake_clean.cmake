file(REMOVE_RECURSE
  "CMakeFiles/mvno_slicing.dir/mvno_slicing.cpp.o"
  "CMakeFiles/mvno_slicing.dir/mvno_slicing.cpp.o.d"
  "mvno_slicing"
  "mvno_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvno_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
