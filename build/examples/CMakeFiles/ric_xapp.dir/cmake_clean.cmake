file(REMOVE_RECURSE
  "CMakeFiles/ric_xapp.dir/ric_xapp.cpp.o"
  "CMakeFiles/ric_xapp.dir/ric_xapp.cpp.o.d"
  "ric_xapp"
  "ric_xapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ric_xapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
