# Empty dependencies file for ric_xapp.
# This may be replaced when dependencies are built.
