file(REMOVE_RECURSE
  "CMakeFiles/interop_adapter.dir/interop_adapter.cpp.o"
  "CMakeFiles/interop_adapter.dir/interop_adapter.cpp.o.d"
  "interop_adapter"
  "interop_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
