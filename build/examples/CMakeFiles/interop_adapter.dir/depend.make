# Empty dependencies file for interop_adapter.
# This may be replaced when dependencies are built.
