# Empty compiler generated dependencies file for live_swap.
# This may be replaced when dependencies are built.
