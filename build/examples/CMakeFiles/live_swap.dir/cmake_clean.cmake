file(REMOVE_RECURSE
  "CMakeFiles/live_swap.dir/live_swap.cpp.o"
  "CMakeFiles/live_swap.dir/live_swap.cpp.o.d"
  "live_swap"
  "live_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
