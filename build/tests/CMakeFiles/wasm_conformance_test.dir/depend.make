# Empty dependencies file for wasm_conformance_test.
# This may be replaced when dependencies are built.
