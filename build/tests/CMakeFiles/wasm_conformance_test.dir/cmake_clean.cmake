file(REMOVE_RECURSE
  "CMakeFiles/wasm_conformance_test.dir/wasm_conformance_test.cpp.o"
  "CMakeFiles/wasm_conformance_test.dir/wasm_conformance_test.cpp.o.d"
  "wasm_conformance_test"
  "wasm_conformance_test.pdb"
  "wasm_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
