file(REMOVE_RECURSE
  "CMakeFiles/wasm_fuzz_test.dir/wasm_fuzz_test.cpp.o"
  "CMakeFiles/wasm_fuzz_test.dir/wasm_fuzz_test.cpp.o.d"
  "wasm_fuzz_test"
  "wasm_fuzz_test.pdb"
  "wasm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
