# Empty dependencies file for wasm_fuzz_test.
# This may be replaced when dependencies are built.
