# Empty compiler generated dependencies file for ric_test.
# This may be replaced when dependencies are built.
