file(REMOVE_RECURSE
  "CMakeFiles/ric_test.dir/ric_test.cpp.o"
  "CMakeFiles/ric_test.dir/ric_test.cpp.o.d"
  "ric_test"
  "ric_test.pdb"
  "ric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
