# Empty dependencies file for ric_test.
# This may be replaced when dependencies are built.
