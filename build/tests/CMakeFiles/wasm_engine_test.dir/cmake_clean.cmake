file(REMOVE_RECURSE
  "CMakeFiles/wasm_engine_test.dir/wasm_engine_test.cpp.o"
  "CMakeFiles/wasm_engine_test.dir/wasm_engine_test.cpp.o.d"
  "wasm_engine_test"
  "wasm_engine_test.pdb"
  "wasm_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
