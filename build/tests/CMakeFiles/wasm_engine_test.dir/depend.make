# Empty dependencies file for wasm_engine_test.
# This may be replaced when dependencies are built.
