file(REMOVE_RECURSE
  "CMakeFiles/wcc_test.dir/wcc_test.cpp.o"
  "CMakeFiles/wcc_test.dir/wcc_test.cpp.o.d"
  "wcc_test"
  "wcc_test.pdb"
  "wcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
