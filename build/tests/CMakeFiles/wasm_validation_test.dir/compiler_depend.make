# Empty compiler generated dependencies file for wasm_validation_test.
# This may be replaced when dependencies are built.
