file(REMOVE_RECURSE
  "CMakeFiles/wasm_validation_test.dir/wasm_validation_test.cpp.o"
  "CMakeFiles/wasm_validation_test.dir/wasm_validation_test.cpp.o.d"
  "wasm_validation_test"
  "wasm_validation_test.pdb"
  "wasm_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
