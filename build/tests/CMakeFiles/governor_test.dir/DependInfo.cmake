
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/governor_test.cpp" "tests/CMakeFiles/governor_test.dir/governor_test.cpp.o" "gcc" "tests/CMakeFiles/governor_test.dir/governor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plugin/CMakeFiles/waran_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/wcc/CMakeFiles/waran_wcc.dir/DependInfo.cmake"
  "/root/repo/build/src/wasmbuilder/CMakeFiles/waran_wasmbuilder.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/waran_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/waran_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
