file(REMOVE_RECURSE
  "CMakeFiles/wcc_programs_test.dir/wcc_programs_test.cpp.o"
  "CMakeFiles/wcc_programs_test.dir/wcc_programs_test.cpp.o.d"
  "wcc_programs_test"
  "wcc_programs_test.pdb"
  "wcc_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcc_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
