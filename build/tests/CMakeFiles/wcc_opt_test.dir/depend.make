# Empty dependencies file for wcc_opt_test.
# This may be replaced when dependencies are built.
