file(REMOVE_RECURSE
  "CMakeFiles/wcc_opt_test.dir/wcc_opt_test.cpp.o"
  "CMakeFiles/wcc_opt_test.dir/wcc_opt_test.cpp.o.d"
  "wcc_opt_test"
  "wcc_opt_test.pdb"
  "wcc_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcc_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
