# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_engine_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_validation_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_test[1]_include.cmake")
include("/root/repo/build/tests/wat_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/wcc_test[1]_include.cmake")
include("/root/repo/build/tests/wcc_opt_test[1]_include.cmake")
include("/root/repo/build/tests/wcc_programs_test[1]_include.cmake")
include("/root/repo/build/tests/plugin_test[1]_include.cmake")
include("/root/repo/build/tests/governor_test[1]_include.cmake")
include("/root/repo/build/tests/ran_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/ric_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
add_test(waranc_cli_roundtrip "sh" "-c" "set -e; tmp=\$(mktemp -d); trap 'rm -rf \$tmp' EXIT; printf 'export fn run() -> i32 { var n: i32 = input_len(); input_read(0,0,n); output_write(0,n); return 0; }' > \$tmp/p.w; /root/repo/build/tools/waranc build \$tmp/p.w -o \$tmp/p.wasm; /root/repo/build/tools/waranc check \$tmp/p.wasm; /root/repo/build/tools/waranc dump \$tmp/p.wasm > \$tmp/p.wat; /root/repo/build/tools/waranc asm \$tmp/p.wat -o \$tmp/p2.wasm; a=\$(/root/repo/build/tools/waranc run \$tmp/p.wasm run --input-hex deadbeef); b=\$(/root/repo/build/tools/waranc run \$tmp/p2.wasm run --input-hex deadbeef); test \"\$a\" = \"\$b\"; test \"\$a\" = deadbeef")
set_tests_properties(waranc_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(waranc_cli_rejects_garbage "sh" "-c" "tmp=\$(mktemp -d); trap 'rm -rf \$tmp' EXIT; printf 'garbage' > \$tmp/bad.wasm; if /root/repo/build/tools/waranc check \$tmp/bad.wasm; then exit 1; else exit 0; fi")
set_tests_properties(waranc_cli_rejects_garbage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
