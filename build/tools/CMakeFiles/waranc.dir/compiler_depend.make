# Empty compiler generated dependencies file for waranc.
# This may be replaced when dependencies are built.
