file(REMOVE_RECURSE
  "CMakeFiles/waranc.dir/waranc.cpp.o"
  "CMakeFiles/waranc.dir/waranc.cpp.o.d"
  "waranc"
  "waranc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waranc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
