#!/usr/bin/env bash
# Clock-injection lint: everything above the runtime layer must read time
# through waran::rt::Clock (src/rt/clock.h), never std::chrono clocks or the
# POSIX clock syscalls directly. Direct clock reads break virtual-time
# campaigns — they pin code to wall time, so deterministic
# faster-than-real-time runs silently go nondeterministic. Only the rt layer
# itself (which wraps the real clock) and src/common (below rt in the layer
# stack) may call the raw clocks.
#
# Run from the repo root. Exits non-zero listing every offending line.
set -u

cd "$(dirname "$0")/.."

# Every scanned tree must exist: a renamed directory silently dropping out
# of the scan is exactly the kind of coverage rot this lint exists to stop.
scan_dirs=(src tests tools bench examples)
for d in "${scan_dirs[@]}"; do
  if [ ! -d "$d" ]; then
    echo "clock lint: expected directory '$d' missing — update scan_dirs" >&2
    exit 2
  fi
done

pattern='(steady_clock|system_clock|high_resolution_clock)::now|(clock_gettime|gettimeofday)\s*\('

hits=$(grep -rEn "$pattern" \
  --include='*.cpp' --include='*.h' --include='*.inc' \
  "${scan_dirs[@]}" |
  grep -v '^src/rt/' |
  grep -v '^src/common/')

if [ -n "$hits" ]; then
  echo "clock lint: raw clock reads outside src/rt/ and src/common/:" >&2
  echo "$hits" >&2
  echo "use waran::rt::now_ns() (src/rt/clock.h) instead." >&2
  exit 1
fi

echo "clock lint: OK (no raw clock reads outside src/rt/ and src/common/)"
