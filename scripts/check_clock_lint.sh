#!/usr/bin/env bash
# Clock-injection lint: everything above the runtime layer must read time
# through waran::rt::Clock (src/rt/clock.h), never std::chrono clocks
# directly. Direct clock reads break virtual-time campaigns — they pin code
# to wall time, so deterministic faster-than-real-time runs silently go
# nondeterministic. Only the rt layer itself (which wraps the real clock)
# and src/common (below rt in the layer stack) may call the raw clocks.
#
# Run from the repo root. Exits non-zero listing every offending line.
set -u

cd "$(dirname "$0")/.."

pattern='(steady_clock|system_clock|high_resolution_clock)::now'

hits=$(grep -rEn "$pattern" \
  --include='*.cpp' --include='*.h' --include='*.inc' \
  src tests tools bench examples 2>/dev/null |
  grep -v '^src/rt/' |
  grep -v '^src/common/')

if [ -n "$hits" ]; then
  echo "clock lint: raw std::chrono clock reads outside src/rt/ and src/common/:" >&2
  echo "$hits" >&2
  echo "use waran::rt::now_ns() (src/rt/clock.h) instead." >&2
  exit 1
fi

echo "clock lint: OK (no raw clock reads outside src/rt/ and src/common/)"
