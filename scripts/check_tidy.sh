#!/usr/bin/env bash
# clang-tidy gate over src/ (config: .clang-tidy at the repo root).
#
# Usage: ./scripts/check_tidy.sh [build-dir]
#
# Needs a build directory configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# (defaults to ./build). Runs clang-tidy on every .cpp under src/ against
# that compilation database and fails on any finding (.clang-tidy sets
# WarningsAsErrors: '*'). Containers without clang-tidy skip with a notice
# rather than fail — the CI `tidy` job installs it and is the actual gate.
set -u

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "tidy: clang-tidy not found; skipping (CI runs the real gate)" >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy: $BUILD_DIR/compile_commands.json missing." >&2
  echo "configure with: cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "tidy: $TIDY over ${#sources[@]} files (db: $BUILD_DIR)"

fail=0
for f in "${sources[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "tidy: findings above must be fixed or NOLINT'ed with a reason." >&2
  exit 1
fi
echo "tidy: OK"
