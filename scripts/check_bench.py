#!/usr/bin/env python3
"""Perf-smoke gate: compare a measured BENCH_interp.json against the
checked-in baseline and fail on regressions.

Usage: check_bench.py <baseline.json> <measured.json> [--tolerance 0.8]

Rules:
  * Every `*.items_per_second` key in the baseline must be present in the
    measured file at >= tolerance * baseline (default 0.8, i.e. fail on a
    >20% throughput regression). Baselines are set conservatively (well
    below a quiet dev machine) so shared CI runners don't flake.
  * Every `*.warm_heap_allocs` key in the measured file must be exactly 0
    — the zero-alloc warm-call invariant is a correctness property, not a
    throughput number, so it gets no tolerance.
  * Every `*.p99_us` key in the baseline is an upper bound: measured must
    be <= baseline / tolerance.
  * Measured keys with a gated suffix but no baseline entry are reported as
    `new (unchecked)` and pass — adding a benchmark must not require
    touching the baseline in the same change. The reverse is not tolerated:
    a baseline key the measured file no longer produces fails as MISSING
    (bench_json_merge's producer-prefix ownership guarantees a removed
    benchmark's key actually disappears from the measured report).

Exit code 0 on pass, 1 on any violation (all violations are reported).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a flat JSON object")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("measured")
    ap.add_argument("--tolerance", type=float, default=0.8,
                    help="minimum measured/baseline ratio for throughput keys")
    args = ap.parse_args()

    baseline = load(args.baseline)
    measured = load(args.measured)
    failures = []

    for key, base in sorted(baseline.items()):
        if key.endswith(".items_per_second"):
            got = measured.get(key)
            if got is None:
                failures.append(f"MISSING  {key} (baseline {base:.3g})")
            elif got < args.tolerance * base:
                failures.append(
                    f"REGRESS  {key}: {got:.3g} < {args.tolerance:g} * "
                    f"baseline {base:.3g}")
            else:
                print(f"ok       {key}: {got:.3g} "
                      f"(baseline {base:.3g}, floor {args.tolerance * base:.3g})")
        elif key.endswith(".p99_us"):
            got = measured.get(key)
            bound = base / args.tolerance
            if got is None:
                failures.append(f"MISSING  {key} (baseline {base:.3g})")
            elif got > bound:
                failures.append(
                    f"REGRESS  {key}: {got:.3g}us > ceiling {bound:.3g}us")
            else:
                print(f"ok       {key}: {got:.3g}us (ceiling {bound:.3g}us)")

    for key, got in sorted(measured.items()):
        if key.endswith(".warm_heap_allocs"):
            if got != 0:
                failures.append(f"ALLOCS   {key}: {got} != 0")
            else:
                print(f"ok       {key}: 0")
        elif (key.endswith(".items_per_second") or key.endswith(".p99_us")) \
                and key not in baseline:
            print(f"new      {key}: {got:.3g} (unchecked; no baseline entry)")

    if failures:
        print(f"\n{len(failures)} perf-smoke violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
